package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Snapshot is a claimed full-store snapshot for a bootstrapping
// replica. StartSeq is the stream sequence the walk is consistent with:
// every frame ≤ StartSeq is durably in the walked stores, and every
// frame > StartSeq replays over the snapshot idempotently (the host
// pins the log at StartSeq so those frames stay retained through the
// walk). Walk streams the keyspace through chunk() as flat
// (key,value,...) pairs. Release frees the claim (admin slot, log pin);
// it must always be called.
type Snapshot struct {
	StartSeq uint64
	Walk     func(chunk func(pairs []uint64) error) (keys uint64, err error)
	Release  func()
}

// SnapshotFunc claims a snapshot, or fails fast (e.g. the host's admin
// slot is held by a conflicting BACKUP/RESTORE/RESHARD — relayed to the
// replica as -BUSY, which retries with backoff).
type SnapshotFunc func() (*Snapshot, error)

// PrimaryConfig wires a Primary to its host server.
type PrimaryConfig struct {
	Log      *Log
	Epoch    func() uint64 // current replication epoch
	Snapshot SnapshotFunc
	// Advertise, when non-nil, names the primary's CLIENT address (not
	// this replication listener); it rides the handshake verdict so
	// replicas can redirect mutations somewhere a client can actually
	// send them.
	Advertise func() string
	// Heartbeat is the idle-link cadence (default 500ms). Write deadline
	// is 4× it; a replica that can't drain the socket that long is
	// dropped and must re-sync.
	Heartbeat time.Duration
}

// snapChunkPairs caps key/value pairs per snapshot frame.
const snapChunkPairs = 1024

// replicaConn is one connected replica's send-side state.
type replicaConn struct {
	conn net.Conn
	mu   sync.Mutex
	ack  uint64
	gone bool
}

// Primary serves the replication stream: it accepts replica links on a
// listener, answers their SYNC handshakes (incremental resume when the
// log still holds their cursor, snapshot bootstrap otherwise), and ships
// delta frames + heartbeats while tracking per-replica ACKs for lag and
// drain accounting.
type Primary struct {
	cfg PrimaryConfig

	mu       sync.Mutex
	replicas map[*replicaConn]struct{}
	ln       net.Listener
	closed   bool
	wg       sync.WaitGroup
	ackCond  *sync.Cond

	// counters for metrics/REPLINFO
	fullSyncs  uint64
	contSyncs  uint64
	staleRejs  uint64
	framesSent uint64
}

// NewPrimary starts serving the replication stream on ln.
func NewPrimary(ln net.Listener, cfg PrimaryConfig) *Primary {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	p := &Primary{cfg: cfg, replicas: make(map[*replicaConn]struct{}), ln: ln}
	p.ackCond = sync.NewCond(&p.mu)
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		rc := &replicaConn{conn: conn}
		p.replicas[rc] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serveReplica(rc)
	}
}

func (p *Primary) dropReplica(rc *replicaConn) {
	rc.conn.Close()
	p.mu.Lock()
	if !rc.gone {
		rc.gone = true
		delete(p.replicas, rc)
		p.ackCond.Broadcast()
	}
	p.mu.Unlock()
}

// serveReplica handles one link: handshake, optional snapshot, then the
// delta tail. The ACK reader runs concurrently on the same connection.
func (p *Primary) serveReplica(rc *replicaConn) {
	defer p.wg.Done()
	defer p.dropReplica(rc)
	hb := p.cfg.Heartbeat

	rc.conn.SetReadDeadline(time.Now().Add(4 * hb))
	br := bufio.NewReaderSize(rc.conn, 1<<16)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	var peerEpoch, peerSeq uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "SYNC %d %d", &peerEpoch, &peerSeq); err != nil {
		return
	}

	bw := bufio.NewWriterSize(rc.conn, 1<<16)
	myEpoch := p.cfg.Epoch()
	writeLine := func(s string) error {
		rc.conn.SetWriteDeadline(time.Now().Add(4 * hb))
		if _, err := bw.WriteString(s + "\n"); err != nil {
			return err
		}
		return bw.Flush()
	}

	// Handshake decision. A peer from a NEWER epoch must not sync from
	// this (stale) primary; a peer from an older epoch — a deposed
	// primary rejoining — is wiped by a full resync; an equal-epoch peer
	// continues incrementally iff the log still retains its cursor.
	var next uint64
	switch {
	case peerEpoch > myEpoch:
		p.count(&p.staleRejs)
		writeLine(fmt.Sprintf("-STALE %d", myEpoch))
		return
	case peerEpoch == myEpoch && p.cfg.Log.CanResume(peerSeq):
		p.count(&p.contSyncs)
		if err := writeLine(fmt.Sprintf("+CONT %d%s", myEpoch, p.advertiseSuffix())); err != nil {
			return
		}
		next = peerSeq
	default:
		startSeq, err := p.sendSnapshot(rc, bw, writeLine, myEpoch)
		if err != nil {
			return
		}
		p.count(&p.fullSyncs)
		next = startSeq
	}

	// ACK reader: every applied frame and every heartbeat is acked, so
	// the read side doubles as the liveness check.
	stop := make(chan struct{})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(stop)
		for {
			rc.conn.SetReadDeadline(time.Now().Add(6 * hb))
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			var e, s uint64
			if _, err := fmt.Sscanf(strings.TrimSpace(line), "ACK %d %d", &e, &s); err != nil {
				return
			}
			rc.mu.Lock()
			if s > rc.ack {
				rc.ack = s
			}
			rc.mu.Unlock()
			p.mu.Lock()
			p.ackCond.Broadcast()
			p.mu.Unlock()
		}
	}()

	// Delta tail: frames as they publish, heartbeats when idle.
	for {
		select {
		case <-stop:
			return
		default:
		}
		f, ok, err := p.cfg.Log.Next(next, hb, stop)
		if err != nil {
			// Evicted (replica too slow) or closed: drop the link; the
			// replica's reconnect handshake gets a fresh verdict.
			return
		}
		rc.conn.SetWriteDeadline(time.Now().Add(4 * hb))
		if !ok {
			if err := WriteFrame(bw, FrameHeartbeat, []uint64{p.cfg.Epoch(), p.cfg.Log.Contiguous()}); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}
		if err := WriteFrame(bw, FrameDelta, deltaWords(f)); err != nil {
			return
		}
		// Flush when nothing more is immediately available.
		if p.cfg.Log.Contiguous() <= f.Seq {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		p.count(&p.framesSent)
		next = f.Seq
	}
}

// sendSnapshot runs the bootstrap path: -BUSY if the host can't take a
// snapshot now, else SnapBegin, the chunked walk, SnapEnd. Returns the
// stream sequence deltas must continue from.
func (p *Primary) sendSnapshot(rc *replicaConn, bw *bufio.Writer, writeLine func(string) error, epoch uint64) (uint64, error) {
	snap, err := p.cfg.Snapshot()
	if err != nil {
		writeLine(fmt.Sprintf("-BUSY %s", strings.ReplaceAll(err.Error(), "\n", " ")))
		return 0, err
	}
	defer snap.Release()
	if err := writeLine(fmt.Sprintf("+FULL %d%s", epoch, p.advertiseSuffix())); err != nil {
		return 0, err
	}
	hb := p.cfg.Heartbeat
	if err := WriteFrame(bw, FrameSnapBegin, []uint64{epoch}); err != nil {
		return 0, err
	}
	// Flush before the walk: the replica must learn it is bootstrapping
	// (and enter its wipe) even if the first chunk takes a while.
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	var sent uint64
	keys, err := snap.Walk(func(pairs []uint64) error {
		for len(pairs) > 0 {
			n := len(pairs) / 2
			if n > snapChunkPairs {
				n = snapChunkPairs
			}
			words := append([]uint64{uint64(n)}, pairs[:2*n]...)
			rc.conn.SetWriteDeadline(time.Now().Add(8 * hb))
			if err := WriteFrame(bw, FrameSnapChunk, words); err != nil {
				return err
			}
			sent += uint64(n)
			pairs = pairs[2*n:]
		}
		return bw.Flush()
	})
	if err != nil {
		return 0, err
	}
	if keys != sent {
		return 0, fmt.Errorf("repl: snapshot walk reported %d keys, streamed %d", keys, sent)
	}
	rc.conn.SetWriteDeadline(time.Now().Add(4 * hb))
	if err := WriteFrame(bw, FrameSnapEnd, []uint64{epoch, snap.StartSeq, sent}); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return snap.StartSeq, nil
}

// advertiseSuffix is the optional client-address token appended to
// handshake verdicts (" <addr>", or "" when unknown).
func (p *Primary) advertiseSuffix() string {
	if p.cfg.Advertise == nil {
		return ""
	}
	if a := p.cfg.Advertise(); a != "" {
		return " " + a
	}
	return ""
}

func (p *Primary) count(c *uint64) {
	p.mu.Lock()
	*c++
	p.mu.Unlock()
}

// PrimaryStatus is a snapshot of the primary's replication state.
type PrimaryStatus struct {
	Replicas   int
	Lag        Lag // worst lag across connected replicas
	FullSyncs  uint64
	ContSyncs  uint64
	StaleRejs  uint64
	FramesSent uint64
}

// Status reports connected-replica count and worst-case lag.
func (p *Primary) Status() PrimaryStatus {
	p.mu.Lock()
	st := PrimaryStatus{
		Replicas:  len(p.replicas),
		FullSyncs: p.fullSyncs, ContSyncs: p.contSyncs,
		StaleRejs: p.staleRejs, FramesSent: p.framesSent,
	}
	acks := make([]uint64, 0, len(p.replicas))
	for rc := range p.replicas {
		rc.mu.Lock()
		acks = append(acks, rc.ack)
		rc.mu.Unlock()
	}
	p.mu.Unlock()
	for _, a := range acks {
		lag := p.cfg.Log.LagFrom(a)
		if lag.Frames > st.Lag.Frames {
			st.Lag = lag
		}
	}
	return st
}

// Drain blocks until every connected replica has acknowledged the log's
// current contiguous sequence (or disconnected), or the timeout expires.
// Graceful shutdown calls it after the batcher drain so replicas are at
// zero lag when the primary exits.
func (p *Primary) Drain(timeout time.Duration) error {
	target := p.cfg.Log.Contiguous()
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		p.ackCond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		behind := 0
		for rc := range p.replicas {
			rc.mu.Lock()
			if rc.ack < target {
				behind++
			}
			rc.mu.Unlock()
		}
		if behind == 0 {
			return nil
		}
		if !time.Now().Before(deadline) {
			return errors.New("repl: drain timeout: replicas still behind")
		}
		p.ackCond.Wait()
	}
}

// Close stops accepting, drops every link, and waits for the handlers.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]*replicaConn, 0, len(p.replicas))
	for rc := range p.replicas {
		conns = append(conns, rc)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, rc := range conns {
		rc.conn.Close()
	}
	p.wg.Wait()
}
