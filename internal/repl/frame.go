// Package repl implements crash-consistent primary→replica streaming
// replication for corundum-server.
//
// The primary publishes every committed group-commit batch into an
// in-memory Log as a sequence-numbered frame (the sequence is made
// durable by riding each batch's own commit fence — see
// workloads.ApplyWithCursor) and ships the frames over TCP to any
// number of replicas. A replica applies each frame as one failure-atomic
// transaction fused with its durable replication cursor {epoch, seq},
// so after a crash on either side the stream resumes exactly at the
// cursor: frames at or below it are deduplicated, the frame above it is
// re-applied idempotently, and nothing is ever half-applied.
//
// Wire protocol, in connection order:
//
//	replica → primary:  "SYNC <epoch> <seq>\n"     (its durable cursor)
//	primary → replica:  "+CONT <epoch>\n"          resume from seq+1
//	                    "+FULL <epoch>\n"          snapshot bootstrap follows
//	                    "-STALE <epoch>\n"         caller's epoch is newer; refuse
//	                    "-BUSY <reason>\n"         snapshot slot busy; retry
//
// then binary CRC frames (same [type][len][payload][crc32] framing as
// the BACKUP file format, integers little-endian, payloads of 8-byte
// words) flow primary→replica:
//
//	FrameDelta     {epoch, seq, shard, count, count×(flags,key,val)}
//	FrameHeartbeat {epoch, contiguousSeq}
//	FrameSnapBegin {epoch}
//	FrameSnapChunk {count, count×(key,val)}
//	FrameSnapEnd   {epoch, startSeq, baseKeys}
//
// while the replica sends "ACK <epoch> <seq>\n" text lines back on the
// same connection (after every applied frame and every heartbeat), which
// the primary uses for lag accounting, graceful-shutdown draining, and
// liveness. A CRC mismatch on either side drops the connection; the
// reconnect handshake re-anchors at the durable cursor, so a corrupt
// frame can delay replication but never corrupt a store.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"corundum/internal/workloads"
)

// Frame types on the replication link.
const (
	FrameDelta     = 1
	FrameHeartbeat = 2
	FrameSnapBegin = 3
	FrameSnapChunk = 4
	FrameSnapEnd   = 5
)

// deltaFlagDel marks a delete in a delta frame's per-op flags word.
const deltaFlagDel = 1

// maxFramePayload bounds a frame's claimed payload so a corrupt length
// word cannot drive an unbounded allocation.
const maxFramePayload = 16 << 20

// ErrBadFrame reports a frame that failed its CRC or shape check. The
// link must be dropped; resume re-anchors at the durable cursor.
var ErrBadFrame = errors.New("repl: corrupt frame")

// Frame is one commit-ordered entry of the replication stream. Ops is
// nil for a gap frame (a reserved sequence whose batch failed to commit;
// replicas advance their cursor over it without touching the store).
type Frame struct {
	Epoch uint64
	Seq   uint64
	Shard int
	Ops   []workloads.Op
	// WallNS stamps publication time (lag_seconds); Bytes is the wire
	// size (lag_bytes). Both are bookkeeping, not shipped.
	WallNS int64
	Bytes  int
}

// WireSize is the frame's on-the-wire byte count (header + payload + crc).
func (f *Frame) WireSize() int { return 8 + 8*(4+3*len(f.Ops)) + 4 }

// WriteFrame emits one CRC frame to w. Callers flush w themselves (a
// sender batches several frames per flush).
func WriteFrame(w *bufio.Writer, typ uint32, words []uint64) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], typ)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(8*len(words)))
	payload := make([]byte, 8*len(words))
	for i, x := range words {
		binary.LittleEndian.PutUint64(payload[8*i:], x)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(tail[:])
	return err
}

// ReadFrame reads one CRC frame from r. A checksum or shape failure
// returns an error wrapping ErrBadFrame; io.EOF at a frame boundary is
// returned as io.EOF.
func ReadFrame(r *bufio.Reader) (typ uint32, words []uint64, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	typ = binary.LittleEndian.Uint32(hdr[0:])
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFramePayload || n%8 != 0 {
		return 0, nil, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated checksum: %v", ErrBadFrame, err)
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.LittleEndian.Uint32(tail[:]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	words = make([]uint64, n/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return typ, words, nil
}

// deltaWords encodes a delta frame's payload.
func deltaWords(f Frame) []uint64 {
	words := make([]uint64, 0, 4+3*len(f.Ops))
	words = append(words, f.Epoch, f.Seq, uint64(f.Shard), uint64(len(f.Ops)))
	for _, op := range f.Ops {
		var flags uint64
		if op.Del {
			flags = deltaFlagDel
		}
		words = append(words, flags, op.Key, op.Val)
	}
	return words
}

// decodeDelta decodes a delta frame's payload.
func decodeDelta(words []uint64) (Frame, error) {
	if len(words) < 4 {
		return Frame{}, fmt.Errorf("%w: short delta frame", ErrBadFrame)
	}
	n := words[3]
	if uint64(len(words)) != 4+3*n {
		return Frame{}, fmt.Errorf("%w: delta count %d does not match payload", ErrBadFrame, n)
	}
	f := Frame{Epoch: words[0], Seq: words[1], Shard: int(words[2])}
	if n > 0 {
		f.Ops = make([]workloads.Op, n)
		for i := uint64(0); i < n; i++ {
			f.Ops[i] = workloads.Op{
				Del: words[4+3*i]&deltaFlagDel != 0,
				Key: words[5+3*i],
				Val: words[6+3*i],
			}
		}
	}
	return f, nil
}
