package repl

import (
	"errors"
	"testing"
	"time"

	"corundum/internal/workloads"
)

func mustNext(t *testing.T, l *Log, after uint64) Frame {
	t.Helper()
	f, ok, err := l.Next(after, time.Second, nil)
	if err != nil || !ok {
		t.Fatalf("Next(%d) = ok=%v err=%v", after, ok, err)
	}
	return f
}

// TestLogOutOfOrderPublish pins the two-phase sequencing contract:
// readers only ever observe the contiguous prefix, even when shard
// committers publish their reserved sequences out of order.
func TestLogOutOfOrderPublish(t *testing.T) {
	l := NewLog(0, 64, 1<<20)
	s1, s2, s3 := l.Reserve(), l.Reserve(), l.Reserve()
	if s1 != 1 || s2 != 2 || s3 != 3 {
		t.Fatalf("reserved %d %d %d", s1, s2, s3)
	}
	l.Publish(Frame{Epoch: 1, Seq: s3, Ops: []workloads.Op{{Key: 3}}})
	l.Publish(Frame{Epoch: 1, Seq: s2, Ops: []workloads.Op{{Key: 2}}})
	if c := l.Contiguous(); c != 0 {
		t.Fatalf("contiguous = %d with seq 1 still pending", c)
	}
	l.Publish(Frame{Epoch: 1, Seq: s1, Ops: []workloads.Op{{Key: 1}}})
	if c := l.Contiguous(); c != 3 {
		t.Fatalf("contiguous = %d after gap fill, want 3", c)
	}
	for want := uint64(1); want <= 3; want++ {
		f := mustNext(t, l, want-1)
		if f.Seq != want || f.Ops[0].Key != want {
			t.Fatalf("frame after %d: %+v", want-1, f)
		}
	}
}

// TestLogCancelFillsGap pins that a failed commit does not stall the
// stream: Cancel publishes an empty frame readers step over.
func TestLogCancelFillsGap(t *testing.T) {
	l := NewLog(10, 64, 1<<20)
	s1 := l.Reserve()
	s2 := l.Reserve()
	l.Publish(Frame{Epoch: 1, Seq: s2, Ops: []workloads.Op{{Key: 9}}})
	l.Cancel(1, s1)
	if c := l.Contiguous(); c != 12 {
		t.Fatalf("contiguous = %d, want 12", c)
	}
	gap := mustNext(t, l, 10)
	if gap.Seq != 11 || gap.Ops != nil {
		t.Fatalf("gap frame = %+v", gap)
	}
}

func TestLogNextHeartbeatTimeout(t *testing.T) {
	l := NewLog(0, 64, 1<<20)
	start := time.Now()
	_, ok, err := l.Next(0, 30*time.Millisecond, nil)
	if ok || err != nil {
		t.Fatalf("Next on empty log = ok=%v err=%v, want heartbeat timeout", ok, err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Next returned before the heartbeat timeout")
	}
}

func TestLogNextWakesOnPublish(t *testing.T) {
	l := NewLog(0, 64, 1<<20)
	go func() {
		time.Sleep(10 * time.Millisecond)
		s := l.Reserve()
		l.Publish(Frame{Epoch: 1, Seq: s})
	}()
	f := mustNext(t, l, 0)
	if f.Seq != 1 {
		t.Fatalf("woke with frame %+v", f)
	}
}

func TestLogNextStop(t *testing.T) {
	l := NewLog(0, 64, 1<<20)
	stop := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(stop)
	}()
	_, _, err := l.Next(0, time.Minute, stop)
	if !errors.Is(err, ErrLogClosed) {
		t.Fatalf("Next after stop = %v, want ErrLogClosed", err)
	}
}

// TestLogEviction pins the backpressure contract: a reader that falls
// out of the bounded window gets ErrEvicted (→ full resync) instead of
// stalling the primary.
func TestLogEviction(t *testing.T) {
	l := NewLog(0, 4, 1<<20)
	for i := 0; i < 10; i++ {
		s := l.Reserve()
		l.Publish(Frame{Epoch: 1, Seq: s, Ops: []workloads.Op{{Key: uint64(i)}}})
	}
	if l.CanResume(0) {
		t.Fatal("CanResume(0) after eviction")
	}
	if !l.CanResume(l.LowestRetained() - 1) {
		t.Fatal("cannot resume from the window edge")
	}
	if _, _, err := l.Next(0, time.Second, nil); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Next below the window = %v, want ErrEvicted", err)
	}
	if f := mustNext(t, l, l.LowestRetained()-1); f.Seq != l.LowestRetained() {
		t.Fatalf("edge read returned %+v", f)
	}
}

// TestLogPinProtectsWindow pins snapshot anchoring: a pin holds frames
// beyond maxFrames (a bootstrap's delta tail must survive the walk),
// but only up to the 4× hard cap — past that, bounded memory wins.
func TestLogPinProtectsWindow(t *testing.T) {
	l := NewLog(0, 4, 1<<20)
	pin := l.Pin() // anchors at seq 0
	for i := 0; i < 12; i++ {
		s := l.Reserve()
		l.Publish(Frame{Epoch: 1, Seq: s})
	}
	// 12 frames ≤ 4×maxFrames: everything the pin covers is retained.
	if !l.CanResume(pin.Seq) {
		t.Fatal("pinned sequence evicted below the hard cap")
	}
	for i := 0; i < 10; i++ {
		s := l.Reserve()
		l.Publish(Frame{Epoch: 1, Seq: s})
	}
	// 22 frames > 4×maxFrames = 16: the hard cap overrides the pin.
	if l.CanResume(pin.Seq) {
		t.Fatal("hard cap did not override the pin")
	}
	pin.Release()
	pin.Release() // double release is safe
	// With the pin gone the window snaps back to maxFrames.
	if got := l.Contiguous() - (l.LowestRetained() - 1); got > 4 {
		t.Fatalf("window still holds %d frames after release", got)
	}
}

func TestLogLagFrom(t *testing.T) {
	l := NewLog(0, 64, 1<<20)
	var bytes uint64
	for i := 0; i < 5; i++ {
		s := l.Reserve()
		f := Frame{Epoch: 1, Seq: s, Ops: []workloads.Op{{Key: uint64(i)}}}
		bytes += uint64(f.WireSize())
		l.Publish(f)
	}
	lag := l.LagFrom(0)
	if lag.Frames != 5 || lag.Bytes != bytes {
		t.Fatalf("lag from 0 = %+v, want 5 frames / %d bytes", lag, bytes)
	}
	if lag.Seconds < 0 {
		t.Fatalf("negative lag seconds: %v", lag.Seconds)
	}
	if caught := l.LagFrom(5); caught.Frames != 0 || caught.Bytes != 0 {
		t.Fatalf("lag when caught up = %+v", caught)
	}
}

func TestLogClose(t *testing.T) {
	l := NewLog(0, 64, 1<<20)
	errc := make(chan error, 1)
	go func() {
		_, _, err := l.Next(0, time.Minute, nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	if err := <-errc; !errors.Is(err, ErrLogClosed) {
		t.Fatalf("Next after Close = %v, want ErrLogClosed", err)
	}
}
