package repl

import (
	"errors"
	"sync"
	"time"
)

// ErrEvicted reports that a requested sequence has fallen off the log's
// bounded retention window: the reader is too far behind for incremental
// catch-up and must full-resync from a snapshot. This is the primary's
// backpressure degradation — a slow replica costs itself a resync; it
// never stalls commits.
var ErrEvicted = errors.New("repl: sequence evicted from log")

// ErrLogClosed reports the log was shut down.
var ErrLogClosed = errors.New("repl: log closed")

// Log is the primary's in-memory replication stream: a bounded,
// commit-ordered window of published frames.
//
// Sequencing is two-phase because shards commit concurrently: a shard's
// committer Reserves the next global sequence just before its batch
// commits (the sequence rides the batch's transaction into the shard's
// durable cursor), then Publishes the frame after the commit — or
// Cancels the sequence if the commit failed, filling the gap with an
// empty frame so the stream stays dense. Readers only ever observe the
// contiguous prefix, so frames leave the log in exactly global commit
// order even though publications arrive out of order.
type Log struct {
	mu   sync.Mutex
	cond *sync.Cond

	next    uint64            // highest reserved sequence
	contig  uint64            // highest contiguous published sequence
	pending map[uint64]Frame  // published above contig, awaiting the gap fill
	frames  []Frame           // retained window: seqs (start, start+len]
	start   uint64            // frames[0].Seq - 1
	bytes   int               // wire bytes retained

	maxFrames int
	maxBytes  int
	pins      map[*Pin]struct{}
	closed    bool
}

// Pin holds a snapshot anchor: frames above Seq are protected from
// eviction (up to a 4× hard cap) until Release, so a bootstrap's delta
// tail is still in the window when the snapshot walk finishes.
type Pin struct {
	Seq uint64
	l   *Log
}

// Release drops the pin. Safe to call more than once.
func (p *Pin) Release() {
	if p.l == nil {
		return
	}
	p.l.mu.Lock()
	delete(p.l.pins, p)
	p.l.evictLocked()
	p.l.mu.Unlock()
	p.l = nil
}

// NewLog builds a log whose next reserved sequence is lastSeq+1 (lastSeq
// is the primary's recovered durable sequence — the max cursor across
// its shards). maxFrames/maxBytes bound the retained window.
func NewLog(lastSeq uint64, maxFrames, maxBytes int) *Log {
	if maxFrames < 1 {
		maxFrames = 1
	}
	if maxBytes < 1 {
		maxBytes = 1 << 20
	}
	l := &Log{
		next: lastSeq, contig: lastSeq, start: lastSeq,
		pending:   make(map[uint64]Frame),
		maxFrames: maxFrames, maxBytes: maxBytes,
		pins: make(map[*Pin]struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Reserve hands out the next global stream sequence. The caller must
// eventually Publish or Cancel it; until then the stream is stalled at
// the gap (readers wait on the contiguous prefix).
func (l *Log) Reserve() uint64 {
	l.mu.Lock()
	l.next++
	s := l.next
	l.mu.Unlock()
	return s
}

// Publish delivers a committed frame for a reserved sequence.
func (l *Log) Publish(f Frame) {
	f.Bytes = f.WireSize()
	f.WallNS = time.Now().UnixNano()
	l.mu.Lock()
	defer l.mu.Unlock()
	if f.Seq <= l.contig {
		return // duplicate (cannot happen in practice; be safe)
	}
	l.pending[f.Seq] = f
	for {
		nf, ok := l.pending[l.contig+1]
		if !ok {
			break
		}
		delete(l.pending, l.contig+1)
		l.contig++
		l.frames = append(l.frames, nf)
		l.bytes += nf.Bytes
	}
	l.evictLocked()
	l.cond.Broadcast()
}

// Cancel fills a reserved sequence whose batch failed to commit with an
// empty gap frame: replicas advance their cursor over it without
// touching their store, keeping the stream dense.
func (l *Log) Cancel(epoch, seq uint64) {
	l.Publish(Frame{Epoch: epoch, Seq: seq})
}

// Contiguous is the highest sequence every reader can reach: all frames
// at or below it are published (or gap-filled).
func (l *Log) Contiguous() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.contig
}

// LastSeq is the highest reserved sequence (possibly not yet committed).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// LowestRetained is the smallest sequence still in the window (contig+1
// if the window is empty).
func (l *Log) LowestRetained() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start + 1
}

// CanResume reports whether a reader at sequence seq can continue
// incrementally: everything above seq is still retained.
func (l *Log) CanResume(seq uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return seq >= l.start && seq <= l.contig
}

// Pin anchors the current contiguous point for a snapshot: the returned
// pin's Seq is the stream position the snapshot is consistent with
// (every frame ≤ Seq is in the walked stores; every frame > Seq replays
// over the snapshot idempotently).
func (l *Log) Pin() *Pin {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &Pin{Seq: l.contig, l: l}
	l.pins[p] = struct{}{}
	return p
}

// Next blocks until the frame after `after` is available, then returns
// it. ErrEvicted means the reader fell out of the window and must
// full-resync; ErrLogClosed means shutdown; a nil error with ok=false
// means the timeout expired with no new frame (send a heartbeat).
func (l *Log) Next(after uint64, timeout time.Duration, stop <-chan struct{}) (Frame, bool, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer timer.Stop()
	// A stopped reader must not block forever on the cond var: poke it.
	done := make(chan struct{})
	defer close(done)
	if stop != nil {
		go func() {
			select {
			case <-stop:
				l.mu.Lock()
				l.cond.Broadcast()
				l.mu.Unlock()
			case <-done:
			}
		}()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.closed {
			return Frame{}, false, ErrLogClosed
		}
		if stop != nil {
			select {
			case <-stop:
				return Frame{}, false, ErrLogClosed
			default:
			}
		}
		if after < l.start {
			return Frame{}, false, ErrEvicted
		}
		if after < l.contig {
			return l.frames[after-l.start], true, nil
		}
		if !time.Now().Before(deadline) {
			return Frame{}, false, nil
		}
		l.cond.Wait()
	}
}

// Lag describes how far behind a reader at ackSeq is.
type Lag struct {
	Frames  uint64
	Bytes   uint64
	Seconds float64
}

// LagFrom computes the lag of a reader whose last acknowledged sequence
// is ackSeq. Bytes only counts retained frames (an evicted backlog is
// under-reported; Frames is exact).
func (l *Log) LagFrom(ackSeq uint64) Lag {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ackSeq >= l.contig {
		return Lag{}
	}
	lag := Lag{Frames: l.contig - ackSeq}
	lo := ackSeq
	if lo < l.start {
		lo = l.start
	}
	for _, f := range l.frames[lo-l.start:] {
		lag.Bytes += uint64(f.Bytes)
	}
	if len(l.frames) > 0 && lo < l.contig {
		oldest := l.frames[lo-l.start].WallNS
		lag.Seconds = float64(time.Now().UnixNano()-oldest) / 1e9
	}
	return lag
}

// Close wakes every waiting reader with ErrLogClosed.
func (l *Log) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// evictLocked trims the window to maxFrames/maxBytes. Pins protect
// frames above the lowest pin, but only up to a 4× hard cap — past
// that, bounded memory wins and the pinned reader eats a resync.
func (l *Log) evictLocked() {
	minPin := l.contig + 1 // lowest pin-protected sequence
	for p := range l.pins {
		if p.Seq+1 < minPin {
			minPin = p.Seq + 1
		}
	}
	for l.contig > l.start {
		size := l.contig - l.start
		if size <= uint64(l.maxFrames) && l.bytes <= l.maxBytes {
			break
		}
		if lowest := l.start + 1; lowest >= minPin && size <= uint64(4*l.maxFrames) {
			break // pinned, and under the hard cap: keep
		}
		l.bytes -= l.frames[0].Bytes
		l.frames = l.frames[1:]
		l.start++
	}
	// Copy off the shared backing array once it is mostly dead.
	if cap(l.frames) > 2*len(l.frames)+64 {
		l.frames = append([]Frame(nil), l.frames...)
	}
}
