package workloads

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"corundum/internal/baselines/engine"
)

// The migration manifest is the persistent heart of crash-safe
// resharding: a heap block, anchored in the store's checksummed meta
// slot, that records how far a shard split/merge (or restore) has
// progressed. Every state transition — recording a batch of moving keys,
// advancing the cursor past a migrated window, clearing the manifest at
// commit — is one undo-logged transaction, so a power cut at any device
// op leaves either the old manifest or the new one, never a blend.
//
// Block layout (all little-endian 8-byte words):
//
//	[kind][epoch][oldN][newN][cursor][batchBuckets][batchLen][reserved]
//	[batch keys ×batchLen]
//	[crc32 over every preceding byte, widened to a word]
//
// The batch is variable-length, so the block is re-allocated on every
// write (free old + alloc new + update the meta slot, all in the same
// transaction): no fixed capacity ever bounds a migration batch. The
// trailing CRC covers the whole block as bytes — wordsCRC's fixed buffer
// caps at a slot group, manifests do not.
//
// Separately, the config word in the meta area packs the cluster layout
// the shard last committed to: epoch<<32 | shard count. The config write
// on shard 0 is THE commit point of a migration; manifests with
// epoch <= config epoch are stale leftovers, manifests with a larger
// epoch are active and must be resumed.

// Manifest kinds. A reshard manifest drives a shard split/merge; a
// restore manifest marks a RESTORE in progress so a crash mid-restore
// wipes the half-written pools at next boot instead of serving them.
const (
	ManifestReshard uint64 = 1
	ManifestRestore uint64 = 2
)

const manifestHeaderWords = 8

// Manifest is the decoded migration record of one shard.
type Manifest struct {
	// Kind is ManifestReshard or ManifestRestore.
	Kind uint64
	// Epoch is the config epoch this migration is moving the cluster TO.
	// Commit makes the config epoch catch up; a manifest whose epoch is
	// not ahead of the config is stale.
	Epoch uint64
	// OldN and NewN are the shard counts before and after the move.
	OldN, NewN uint64
	// Cursor is the next bucket index on this source shard not yet
	// migrated: keys hashing below it live at their NewN home, keys at or
	// above it still live here.
	Cursor uint64
	// BatchBuckets is the width of the in-flight batch window
	// [Cursor, Cursor+BatchBuckets); zero when no batch is in flight.
	BatchBuckets uint64
	// Batch lists the keys recorded for the in-flight window: the keys a
	// recovering migration must reconcile at their targets (re-put if
	// still present at the source, delete if not) before advancing.
	Batch []uint64
}

func (m *Manifest) encode() []byte {
	buf := make([]byte, 8*(manifestHeaderWords+len(m.Batch)+1))
	words := []uint64{m.Kind, m.Epoch, m.OldN, m.NewN, m.Cursor, m.BatchBuckets, uint64(len(m.Batch)), 0}
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	for i, k := range m.Batch {
		binary.LittleEndian.PutUint64(buf[8*(manifestHeaderWords+i):], k)
	}
	crc := uint64(crc32.ChecksumIEEE(buf[:len(buf)-8]))
	binary.LittleEndian.PutUint64(buf[len(buf)-8:], crc)
	return buf
}

// decodeManifest reads and verifies the manifest block at off.
func decodeManifest(tx engine.Tx, off uint64) (*Manifest, error) {
	hdr := make([]byte, 8*manifestHeaderWords)
	tx.ReadBytes(off, hdr)
	batchLen := binary.LittleEndian.Uint64(hdr[8*6:])
	if batchLen > 1<<20 {
		return nil, fmt.Errorf("%w: manifest claims %d batch keys", ErrDataCorrupt, batchLen)
	}
	buf := make([]byte, 8*(manifestHeaderWords+batchLen+1))
	tx.ReadBytes(off, buf)
	want := binary.LittleEndian.Uint64(buf[len(buf)-8:])
	got := uint64(crc32.ChecksumIEEE(buf[:len(buf)-8]))
	if got != want {
		return nil, fmt.Errorf("%w: manifest block at %#x", ErrDataCorrupt, off)
	}
	m := &Manifest{
		Kind:         binary.LittleEndian.Uint64(buf[0:]),
		Epoch:        binary.LittleEndian.Uint64(buf[8:]),
		OldN:         binary.LittleEndian.Uint64(buf[16:]),
		NewN:         binary.LittleEndian.Uint64(buf[24:]),
		Cursor:       binary.LittleEndian.Uint64(buf[32:]),
		BatchBuckets: binary.LittleEndian.Uint64(buf[40:]),
	}
	if batchLen > 0 {
		m.Batch = make([]uint64, batchLen)
		for i := range m.Batch {
			m.Batch[i] = binary.LittleEndian.Uint64(buf[8*(manifestHeaderWords+uint64(i)):])
		}
	}
	if m.Kind != ManifestReshard && m.Kind != ManifestRestore {
		return nil, fmt.Errorf("%w: manifest kind %d", ErrDataCorrupt, m.Kind)
	}
	return m, nil
}

// manifestBlockSize reports the allocated size of the block at off so it
// can be freed. It trusts only the verified batchLen word.
func manifestBlockSize(tx engine.Tx, off uint64) (uint64, error) {
	hdr := make([]byte, 8*manifestHeaderWords)
	tx.ReadBytes(off, hdr)
	batchLen := binary.LittleEndian.Uint64(hdr[8*6:])
	if batchLen > 1<<20 {
		return 0, fmt.Errorf("%w: manifest claims %d batch keys", ErrDataCorrupt, batchLen)
	}
	return 8 * (manifestHeaderWords + batchLen + 1), nil
}

// packConfig packs a cluster config into the meta word: epoch<<32 | n.
// The zero word means "config never written" (epoch 0 is reserved).
func packConfig(shards int, epoch uint64) uint64 { return epoch<<32 | uint64(shards)&0xFFFFFFFF }

// ReadConfig reports the committed cluster layout recorded in this
// store: shard count and epoch. shards == 0 means the config was never
// written (a pre-sharding store or a fresh one not yet initialized).
func (kv *KVStore) ReadConfig() (shards int, epoch uint64, err error) {
	err = kv.pool.Tx(func(tx engine.Tx) error {
		w := tx.Load(kv.meta + kvMetaCfg)
		if tx.Load(kv.meta+kvMetaCfg+8) != wordsCRC(w) {
			return fmt.Errorf("%w: config meta slot", ErrDataCorrupt)
		}
		shards, epoch = int(w&0xFFFFFFFF), w>>32
		return nil
	})
	return shards, epoch, err
}

// WriteConfig durably commits the cluster layout {shards, epoch} into
// this store. On shard 0 this is the migration commit point: once the
// new config is durable, manifests at or below its epoch are stale.
func (kv *KVStore) WriteConfig(shards int, epoch uint64) error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		return kv.writeConfigTx(tx, shards, epoch)
	})
}

func (kv *KVStore) writeConfigTx(tx engine.Tx, shards int, epoch uint64) error {
	w := packConfig(shards, epoch)
	if err := tx.Store(kv.meta+kvMetaCfg, w); err != nil {
		return err
	}
	return tx.Store(kv.meta+kvMetaCfg+8, wordsCRC(w))
}

// ReadManifest returns this shard's pending migration manifest, or nil
// when none is recorded.
func (kv *KVStore) ReadManifest() (m *Manifest, err error) {
	err = kv.pool.Tx(func(tx engine.Tx) error {
		off := tx.Load(kv.meta + kvMetaMani)
		if tx.Load(kv.meta+kvMetaMani+8) != wordsCRC(off) {
			return fmt.Errorf("%w: manifest meta slot", ErrDataCorrupt)
		}
		if off == 0 {
			return nil
		}
		m, err = decodeManifest(tx, off)
		return err
	})
	return m, err
}

// WriteManifest durably replaces this shard's manifest with m (m == nil
// clears it) in one failure-atomic transaction.
func (kv *KVStore) WriteManifest(m *Manifest) error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		return kv.writeManifestTx(tx, m)
	})
}

// ClearManifest removes the pending manifest, freeing its block.
func (kv *KVStore) ClearManifest() error { return kv.WriteManifest(nil) }

func (kv *KVStore) writeManifestTx(tx engine.Tx, m *Manifest) error {
	old := tx.Load(kv.meta + kvMetaMani)
	if tx.Load(kv.meta+kvMetaMani+8) != wordsCRC(old) {
		return fmt.Errorf("%w: manifest meta slot", ErrDataCorrupt)
	}
	var off uint64
	if m != nil {
		enc := m.encode()
		var err error
		off, err = tx.Alloc(uint64(len(enc)))
		if err != nil {
			return err
		}
		if err := tx.StoreBytes(off, enc); err != nil {
			return err
		}
	}
	if err := tx.Store(kv.meta+kvMetaMani, off); err != nil {
		return err
	}
	if err := tx.Store(kv.meta+kvMetaMani+8, wordsCRC(off)); err != nil {
		return err
	}
	if old != 0 {
		size, err := manifestBlockSize(tx, old)
		if err != nil {
			return err
		}
		if err := tx.Free(old, size); err != nil {
			return err
		}
	}
	return nil
}

// ApplyWithManifest runs every op AND replaces the manifest (nil clears
// it) in ONE failure-atomic transaction. This is the migration engine's
// crash-atomicity primitive: "delete the moved keys at the source and
// advance the cursor past them" must be indivisible, or a cut between
// the two would lose keys (deleted but cursor still routes reads here)
// or duplicate them (cursor advanced but keys still present).
func (kv *KVStore) ApplyWithManifest(ops []Op, m *Manifest) ([]bool, error) {
	res := make([]bool, len(ops))
	err := kv.pool.Tx(func(tx engine.Tx) error {
		for i, op := range ops {
			if op.Del {
				removed, err := kv.deleteTx(tx, op.Key)
				if err != nil {
					return err
				}
				res[i] = removed
			} else {
				if err := kv.putTx(tx, op.Key, op.Val); err != nil {
					return err
				}
				res[i] = true
			}
		}
		return kv.writeManifestTx(tx, m)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
