package workloads

import (
	"errors"
	"math/rand"
	"testing"

	"corundum/internal/baselines/corundumeng"
	"corundum/internal/baselines/engine"
)

func migPool(t *testing.T) engine.Pool {
	t.Helper()
	p, err := corundumeng.Lib{}.Open(engine.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestManifestConfigRoundTrip(t *testing.T) {
	p := migPool(t)
	kv, err := NewKVStore(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n, ep, err := kv.ReadConfig(); err != nil || n != 0 || ep != 0 {
		t.Fatalf("fresh config = %d,%d,%v; want zeros", n, ep, err)
	}
	if m, err := kv.ReadManifest(); err != nil || m != nil {
		t.Fatalf("fresh manifest = %v,%v; want nil", m, err)
	}
	if err := kv.WriteConfig(4, 7); err != nil {
		t.Fatal(err)
	}
	if n, ep, err := kv.ReadConfig(); err != nil || n != 4 || ep != 7 {
		t.Fatalf("config = %d,%d,%v; want 4,7", n, ep, err)
	}

	want := &Manifest{
		Kind: ManifestReshard, Epoch: 8, OldN: 4, NewN: 8,
		Cursor: 40, BatchBuckets: 16, Batch: []uint64{3, 99, 12345678901234},
	}
	if err := kv.WriteManifest(want); err != nil {
		t.Fatal(err)
	}
	got, err := kv.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Kind != want.Kind || got.Epoch != want.Epoch || got.OldN != want.OldN ||
		got.NewN != want.NewN || got.Cursor != want.Cursor || got.BatchBuckets != want.BatchBuckets ||
		len(got.Batch) != len(want.Batch) {
		t.Fatalf("manifest round-trip: got %+v want %+v", got, want)
	}
	for i := range want.Batch {
		if got.Batch[i] != want.Batch[i] {
			t.Fatalf("batch[%d] = %d want %d", i, got.Batch[i], want.Batch[i])
		}
	}
	// Replacing a manifest frees the old block and survives an integrity walk.
	if err := kv.WriteManifest(&Manifest{Kind: ManifestRestore, Epoch: 9, OldN: 4, NewN: 4}); err != nil {
		t.Fatal(err)
	}
	if err := kv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := kv.ClearManifest(); err != nil {
		t.Fatal(err)
	}
	if m, err := kv.ReadManifest(); err != nil || m != nil {
		t.Fatalf("cleared manifest = %v,%v; want nil", m, err)
	}
	if err := kv.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}

	// Meta state must survive re-attach.
	kv2, err := AttachKVStore(p)
	if err != nil {
		t.Fatal(err)
	}
	if n, ep, err := kv2.ReadConfig(); err != nil || n != 4 || ep != 7 {
		t.Fatalf("config after attach = %d,%d,%v; want 4,7", n, ep, err)
	}
}

// reshardFixture populates oldN stores with nKeys keys laid out for an
// oldN-shard cluster and returns the stores (padded to max(oldN,newN)
// with fresh empty stores) plus the key→value model.
func reshardFixture(t *testing.T, oldN, newN, nKeys int) ([]*KVStore, map[uint64]uint64) {
	t.Helper()
	stores := make([]*KVStore, max(oldN, newN))
	for i := range stores {
		p := migPool(t)
		kv, err := NewKVStore(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = kv
	}
	if err := stores[0].WriteConfig(oldN, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	model := make(map[uint64]uint64, nKeys)
	for len(model) < nKeys {
		k, v := rng.Uint64(), rng.Uint64()
		model[k] = v
		if err := stores[ShardFor(k, oldN)].Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	return stores, model
}

// verifyPlacement asserts every model key lives exactly once, at its
// n-shard home, with the right value.
func verifyPlacement(t *testing.T, stores []*KVStore, n int, model map[uint64]uint64) {
	t.Helper()
	for k, want := range model {
		home := ShardFor(k, n)
		for s, st := range stores {
			got, found, err := st.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if s == home && (!found || got != want) {
				t.Fatalf("key %d: home shard %d has %d,%v want %d", k, home, got, found, want)
			}
			if s != home && found {
				t.Fatalf("key %d: duplicated on shard %d (home %d)", k, s, home)
			}
		}
	}
	total := 0
	for _, st := range stores {
		l, err := st.Len()
		if err != nil {
			t.Fatal(err)
		}
		total += l
	}
	if total != len(model) {
		t.Fatalf("stores hold %d keys, model has %d", total, len(model))
	}
	for _, st := range stores {
		if err := st.VerifyIntegrity(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReshardSplitAndMerge(t *testing.T) {
	for _, tc := range []struct{ oldN, newN int }{{1, 2}, {2, 4}, {4, 2}, {3, 1}} {
		stores, model := reshardFixture(t, tc.oldN, tc.newN, 150)
		rs, err := NewResharder(stores, tc.oldN, tc.newN, 2, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Init(); err != nil {
			t.Fatal(err)
		}
		completed, err := rs.Run(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !completed {
			t.Fatalf("%d->%d: Run did not complete", tc.oldN, tc.newN)
		}
		verifyPlacement(t, stores, tc.newN, model)
		if n, ep, err := stores[0].ReadConfig(); err != nil || n != tc.newN || ep != 2 {
			t.Fatalf("%d->%d: committed config = %d,%d,%v", tc.oldN, tc.newN, n, ep, err)
		}
		for s, st := range stores {
			if m, err := st.ReadManifest(); err != nil || m != nil {
				t.Fatalf("%d->%d: shard %d manifest not cleared: %v,%v", tc.oldN, tc.newN, s, m, err)
			}
		}
		moved, batches, frac := rs.Progress()
		if batches == 0 || frac != 1.0 {
			t.Fatalf("%d->%d: progress moved=%d batches=%d frac=%v", tc.oldN, tc.newN, moved, batches, frac)
		}
	}
}

// TestReshardOwnerMidMigration steps a split one batch at a time and
// asserts after every batch that each key is readable exactly where
// Owner says it lives — the "reads are never wrong" invariant.
func TestReshardOwnerMidMigration(t *testing.T) {
	stores, model := reshardFixture(t, 2, 4, 200)
	rs, err := NewResharder(stores, 2, 4, 2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Init(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		for {
			done, err := rs.Step(s)
			if err != nil {
				t.Fatal(err)
			}
			for k, want := range model {
				o := rs.Owner(k)
				got, found, err := stores[o].Get(k)
				if err != nil {
					t.Fatal(err)
				}
				if !found || got != want {
					t.Fatalf("mid-migration: key %d at owner %d = %d,%v want %d", k, o, got, found, want)
				}
			}
			if done {
				break
			}
		}
	}
	if !rs.Done() {
		t.Fatal("Done() false after all sources stepped to completion")
	}
	if err := rs.Finish(); err != nil {
		t.Fatal(err)
	}
	verifyPlacement(t, stores, 4, model)
}

// TestReshardAttachResume abandons a split midway (as a crash or SIGTERM
// would) and drives it to completion with a fresh Resharder attached
// from the durable manifests alone.
func TestReshardAttachResume(t *testing.T) {
	stores, model := reshardFixture(t, 1, 3, 120)
	rs, err := NewResharder(stores, 1, 3, 2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Init(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if done, err := rs.Step(0); err != nil {
			t.Fatal(err)
		} else if done {
			t.Fatal("split finished before the test could abandon it; shrink the batch window")
		}
	}

	// "Restart": rebuild from persistent state only.
	m, err := stores[0].ReadManifest()
	if err != nil || m == nil {
		t.Fatalf("manifest after abandon: %v, %v", m, err)
	}
	if m.Cursor == 0 {
		t.Fatal("cursor did not advance")
	}
	rs2, err := NewResharder(stores, int(m.OldN), int(m.NewN), m.Epoch, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs2.Attach(); err != nil {
		t.Fatal(err)
	}
	// Mutations that happened while the migration was parked must still
	// land correctly: overwrite one unmigrated key, delete another.
	var overwrote, deleted uint64
	found := 0
	for k := range model {
		if rs2.Owner(k) == 0 && found < 2 {
			if found == 0 {
				overwrote = k
				model[k] = 424242
				if err := stores[0].Put(k, 424242); err != nil {
					t.Fatal(err)
				}
			} else {
				deleted = k
				delete(model, k)
				if _, err := stores[0].Delete(k); err != nil {
					t.Fatal(err)
				}
			}
			found++
		}
	}
	if found != 2 {
		t.Fatal("could not find unmigrated keys to mutate")
	}
	_ = overwrote
	_ = deleted

	completed, err := rs2.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("resumed Run did not complete")
	}
	verifyPlacement(t, stores, 3, model)
}

// TestReshardFenceRefusesWindow checks CheckWrite refuses exactly the
// keys whose batch is mid-move and routes them to their new home.
func TestReshardFenceRefusesWindow(t *testing.T) {
	stores, model := reshardFixture(t, 1, 2, 80)
	rs, err := NewResharder(stores, 1, 2, 2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Init(); err != nil {
		t.Fatal(err)
	}
	rs.fence.Store(&fenceWindow{Src: 0, Lo: 0, Hi: stores[0].Buckets()})
	defer rs.fence.Store(nil)
	refused := 0
	for k := range model {
		err := rs.CheckWrite(0, k)
		if ShardFor(k, 2) == 0 {
			if err != nil {
				t.Fatalf("key %d staying on shard 0 refused: %v", k, err)
			}
			continue
		}
		var mv MovedError
		if !errors.As(err, &mv) {
			t.Fatalf("fenced key %d: err = %v, want MovedError", k, err)
		}
		if mv.Shard != ShardFor(k, 2) {
			t.Fatalf("fenced key %d routed to %d, want %d", k, mv.Shard, ShardFor(k, 2))
		}
		refused++
	}
	if refused == 0 {
		t.Fatal("fence refused nothing")
	}
}
