package workloads

import (
	"fmt"
	"sync"
	"testing"

	"corundum/internal/baselines/corundumeng"
	"corundum/internal/baselines/engine"
	"corundum/internal/pmem"
)

// TestSetFenceAttribution pins the fence profile of the paper's hot path:
// a single-key SET that overwrites an existing entry costs exactly three
// fences — the undo-log append and the state-word retire (journal scope)
// plus the commit's data fence (user-data scope) — and touches the
// allocator not at all. A regression here means either the commit
// protocol gained fences or the attribution plumbing mislabels them.
func TestSetFenceAttribution(t *testing.T) {
	p, err := corundumeng.Lib{}.Open(engine.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	kv, err := NewKVStore(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(42, 1); err != nil { // insert: entry allocation
		t.Fatal(err)
	}

	dev := p.Device()
	before := dev.Stats()
	if err := kv.Put(42, 2); err != nil { // overwrite: pure undo-log path
		t.Fatal(err)
	}
	after := dev.Stats()

	delta := func(sc pmem.Scope) uint64 {
		return after.ByScope[sc].Fences - before.ByScope[sc].Fences
	}
	if got := delta(pmem.ScopeJournal); got != 2 {
		t.Errorf("journal fences = %d, want 2 (append + state retire)", got)
	}
	if got := delta(pmem.ScopeUserData); got != 1 {
		t.Errorf("user-data fences = %d, want 1 (commit fence)", got)
	}
	if got := delta(pmem.ScopeAllocRedo); got != 0 {
		t.Errorf("alloc-redo fences = %d, want 0 (no allocation on overwrite)", got)
	}
	if got := delta(pmem.ScopeRecovery); got != 0 {
		t.Errorf("recovery fences = %d, want 0", got)
	}
}

// TestInsertFenceBudget pins the slab layer's headline win: a SET that
// ALLOCATES (fresh key, entry node carved for it) costs at most four
// fences once the arena's slab cache is warm — at most three journal
// fences plus the one user-data commit fence, and exactly zero in the
// alloc-redo scope. Before the slab layer the same insert paid a full
// three-fence redo cycle in the allocator on top of its journal work
// (~6 fences total); a regression here reintroduces the fence tax the
// deferred-fence claim protocol exists to kill.
func TestInsertFenceBudget(t *testing.T) {
	p, err := corundumeng.Lib{}.Open(engine.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	kv, err := NewKVStore(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Transactions round-robin across the pool's journals and each journal
	// allocates from its own arena, so one warm-up insert per journal
	// (plus slack) leaves every arena's entry-size class stocked: the
	// warm-up misses run refill batches that carve spares.
	const warmup = 24
	for i := 0; i < warmup; i++ {
		if err := kv.Put(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	dev := p.Device()
	const probes = 8 // one per journal: every arena must satisfy the budget
	for i := 0; i < probes; i++ {
		before := dev.Stats()
		if err := kv.Put(uint64(warmup+i), 7); err != nil {
			t.Fatal(err)
		}
		after := dev.Stats()
		delta := func(sc pmem.Scope) uint64 {
			return after.ByScope[sc].Fences - before.ByScope[sc].Fences
		}
		if got := delta(pmem.ScopeAllocRedo); got != 0 {
			t.Errorf("probe %d: alloc-redo fences = %d, want 0 (claim missed a warm cache)", i, got)
		}
		if got := delta(pmem.ScopeJournal); got > 3 {
			t.Errorf("probe %d: journal fences = %d, want <= 3", i, got)
		}
		if got := delta(pmem.ScopeUserData); got != 1 {
			t.Errorf("probe %d: user-data fences = %d, want 1 (commit fence)", i, got)
		}
		total := after.Fences - before.Fences
		if total > 4 {
			t.Errorf("probe %d: total fences = %d, want <= 4", i, total)
		}
	}
}

// TestSetFenceAttributionConcurrent holds the same 2:1 journal:user-data
// ratio in aggregate when many goroutines overwrite disjoint keys — the
// per-goroutine scope table must not bleed labels across concurrent
// transactions. Run under -race in CI.
func TestSetFenceAttributionConcurrent(t *testing.T) {
	p, err := corundumeng.Lib{}.Open(engine.Config{Size: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	kv, err := NewKVStore(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if err := kv.Put(uint64(w)<<32|uint64(i), 0); err != nil {
				t.Fatal(err)
			}
		}
	}

	dev := p.Device()
	before := dev.Stats()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := kv.Put(uint64(w)<<32|uint64(i), uint64(i)+1); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	after := dev.Stats()

	const ops = workers * perWorker
	if got := after.ByScope[pmem.ScopeJournal].Fences - before.ByScope[pmem.ScopeJournal].Fences; got != 2*ops {
		t.Errorf("journal fences = %d, want %d", got, 2*ops)
	}
	if got := after.ByScope[pmem.ScopeUserData].Fences - before.ByScope[pmem.ScopeUserData].Fences; got != ops {
		t.Errorf("user-data fences = %d, want %d", got, ops)
	}
	if got := after.ByScope[pmem.ScopeAllocRedo].Fences - before.ByScope[pmem.ScopeAllocRedo].Fences; got != 0 {
		t.Errorf("alloc-redo fences = %d, want 0", got)
	}
}
