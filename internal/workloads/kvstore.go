package workloads

import (
	"corundum/internal/baselines/engine"
)

// KVStore is the paper's "simple Key-Value store data structure using hash
// map": a fixed bucket directory with chained entries.
//
// Entry layout: [key][val][next], 24 bytes (rounded to a 32-byte block by
// the allocator minimum).
const (
	kvKey   = 0
	kvVal   = 8
	kvNext  = 16
	kvEntry = 24
)

// KVStore is a persistent hash map over one engine pool.
type KVStore struct {
	pool     engine.Pool
	buckets  uint64 // offset of the bucket array
	nBuckets uint64
}

// NewKVStore initializes a store with nBuckets chains (rounded up to a
// power of two).
func NewKVStore(p engine.Pool, nBuckets int) (*KVStore, error) {
	n := uint64(1)
	for n < uint64(nBuckets) {
		n <<= 1
	}
	kv := &KVStore{pool: p, nBuckets: n}
	err := p.Tx(func(tx engine.Tx) error {
		dir, err := tx.Alloc(8 + n*8)
		if err != nil {
			return err
		}
		if err := tx.Store(dir, n); err != nil {
			return err
		}
		zero := make([]byte, n*8)
		if err := tx.StoreBytes(dir+8, zero); err != nil {
			return err
		}
		kv.buckets = dir + 8
		return tx.SetRoot(dir)
	})
	if err != nil {
		return nil, err
	}
	return kv, nil
}

// AttachKVStore reconnects to a store previously created in the pool.
func AttachKVStore(p engine.Pool) *KVStore {
	dir := p.Root()
	kv := &KVStore{pool: p, buckets: dir + 8}
	_ = p.Tx(func(tx engine.Tx) error {
		kv.nBuckets = tx.Load(dir)
		return nil
	})
	return kv
}

// fibHash spreads keys across buckets (Fibonacci hashing).
func (kv *KVStore) bucket(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return kv.buckets + (h&(kv.nBuckets-1))*8
}

// Put inserts or updates key (the paper's PUT).
func (kv *KVStore) Put(key, val uint64) error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		return kv.putTx(tx, key, val)
	})
}

func (kv *KVStore) putTx(tx engine.Tx, key, val uint64) error {
	slot := kv.bucket(key)
	for e := tx.Load(slot); e != 0; e = tx.Load(e + kvNext) {
		if tx.Load(e+kvKey) == key {
			return tx.Store(e+kvVal, val)
		}
	}
	e, err := tx.Alloc(kvEntry)
	if err != nil {
		return err
	}
	if err := tx.Store(e+kvKey, key); err != nil {
		return err
	}
	if err := tx.Store(e+kvVal, val); err != nil {
		return err
	}
	if err := tx.Store(e+kvNext, tx.Load(slot)); err != nil {
		return err
	}
	return tx.Store(slot, e)
}

// Get looks up key (the paper's GET).
func (kv *KVStore) Get(key uint64) (val uint64, found bool, err error) {
	err = kv.pool.Tx(func(tx engine.Tx) error {
		for e := tx.Load(kv.bucket(key)); e != 0; e = tx.Load(e + kvNext) {
			if tx.Load(e+kvKey) == key {
				val = tx.Load(e + kvVal)
				found = true
				return nil
			}
		}
		return nil
	})
	return val, found, err
}

// Delete removes key and reclaims its entry.
func (kv *KVStore) Delete(key uint64) (removed bool, err error) {
	err = kv.pool.Tx(func(tx engine.Tx) error {
		removed, err = kv.deleteTx(tx, key)
		return err
	})
	return removed, err
}

func (kv *KVStore) deleteTx(tx engine.Tx, key uint64) (bool, error) {
	slot := kv.bucket(key)
	for e := tx.Load(slot); e != 0; e = tx.Load(e + kvNext) {
		if tx.Load(e+kvKey) == key {
			if err := tx.Store(slot, tx.Load(e+kvNext)); err != nil {
				return false, err
			}
			return true, tx.Free(e, kvEntry)
		}
		slot = e + kvNext
	}
	return false, nil
}

// Op is one mutation in a batched transaction: a PUT of Key=Val, or (when
// Del is set) a delete of Key.
type Op struct {
	Del      bool
	Key, Val uint64
}

// Apply runs every op, in order, inside ONE failure-atomic transaction:
// after a crash either all ops are visible or none are. This is the
// group-commit entry point used by corundum-server's batcher — one
// undo-log commit (and its flush+fence) is amortized over the whole
// batch. The returned slice has one element per op: for deletes, whether
// the key existed; for puts, always true.
func (kv *KVStore) Apply(ops []Op) ([]bool, error) {
	res := make([]bool, len(ops))
	if len(ops) == 0 {
		return res, nil
	}
	err := kv.pool.Tx(func(tx engine.Tx) error {
		for i, op := range ops {
			if op.Del {
				removed, err := kv.deleteTx(tx, op.Key)
				if err != nil {
					return err
				}
				res[i] = removed
			} else {
				if err := kv.putTx(tx, op.Key, op.Val); err != nil {
					return err
				}
				res[i] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Scan visits every key/value pair (in bucket order, not key order) until
// fn returns false. It runs as a read-only transaction.
func (kv *KVStore) Scan(fn func(key, val uint64) bool) error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		for b := uint64(0); b < kv.nBuckets; b++ {
			for e := tx.Load(kv.buckets + b*8); e != 0; e = tx.Load(e + kvNext) {
				if !fn(tx.Load(e+kvKey), tx.Load(e+kvVal)) {
					return nil
				}
			}
		}
		return nil
	})
}

// Len counts entries (test helper).
func (kv *KVStore) Len() (int, error) {
	n := 0
	err := kv.pool.Tx(func(tx engine.Tx) error {
		for b := uint64(0); b < kv.nBuckets; b++ {
			for e := tx.Load(kv.buckets + b*8); e != 0; e = tx.Load(e + kvNext) {
				n++
			}
		}
		return nil
	})
	return n, err
}
