package workloads

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"corundum/internal/baselines/engine"
)

// ErrDataCorrupt reports that a stored checksum failed verification: the
// media returned bytes that no committed transaction wrote. Verified
// readers surface it instead of silently returning a wrong value.
var ErrDataCorrupt = errors.New("workloads: data corruption detected")

// KVStore is the paper's "simple Key-Value store data structure using hash
// map": a fixed bucket directory with chained entries, hardened against
// at-rest media faults with checksums on every structure.
//
// Entry layout: [key][next][val][crc], 32 bytes (the allocator minimum
// anyway). crc is a CRC32 (widened to a word) over key/next/val. val and
// crc are adjacent so the hot overwrite path updates them with ONE
// contiguous 16-byte store — a single undo-log entry, preserving the
// paper's fence profile (entries are 32-byte aligned, so val and crc
// always share a cache line).
const (
	kvKey   = 0
	kvNext  = 8
	kvVal   = 16
	kvCRC   = 24
	kvEntry = 32
)

// Directory layout:
//
//	[nBuckets][dirCRC][slots n×8][groupCRCs ⌈n/8⌉×8]
//	[cfg][cfgCRC][mani][maniCRC][replEpoch][replSeq][replCRC][reserved]
//
// dirCRC covers the nBuckets word; groupCRC i covers slots [8i, 8i+8).
// The trailing meta words anchor the sharding and replication machinery:
// cfg packs the cluster config (epoch<<32 | shard count, 0 when never
// written), mani points at the migration/restore manifest block (0 when
// no manifest is pending), and the repl pair is the durable replication
// cursor {epoch, seq} — on a replica, the last frame applied; on a
// primary, the last sequence this shard committed (see ApplyWithCursor).
// Each slot carries its own checksum so a media fault in any of them is
// a loud ErrDataCorrupt, never silent misrouting or silent re-apply.
const (
	slotGroup = 8
	kvMetaLen = 64 // [cfg][cfgCRC][mani][maniCRC][replEpoch][replSeq][replCRC][reserved]

	kvMetaCfg  = 0  // offset of the config word within the meta area
	kvMetaMani = 16 // offset of the manifest-pointer word within the meta area
	kvMetaRepl = 32 // offset of the replication cursor pair within the meta area
)

// KVStore is a persistent hash map over one engine pool.
type KVStore struct {
	pool     engine.Pool
	dir      uint64 // offset of the directory block
	buckets  uint64 // offset of the slot array
	groupCRC uint64 // offset of the slot-group checksum array
	meta     uint64 // offset of the config/manifest meta words
	nBuckets uint64
}

func wordsCRC(words ...uint64) uint64 {
	var buf [8 * slotGroup]byte
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return uint64(crc32.ChecksumIEEE(buf[:8*len(words)]))
}

func entryCRC(key, next, val uint64) uint64 { return wordsCRC(key, next, val) }

func groups(n uint64) uint64 { return (n + slotGroup - 1) / slotGroup }

// NewKVStore initializes a store with nBuckets chains (rounded up to a
// power of two).
func NewKVStore(p engine.Pool, nBuckets int) (*KVStore, error) {
	n := uint64(1)
	for n < uint64(nBuckets) {
		n <<= 1
	}
	kv := &KVStore{pool: p, nBuckets: n}
	err := p.Tx(func(tx engine.Tx) error {
		dir, err := tx.Alloc(16 + n*8 + groups(n)*8 + kvMetaLen)
		if err != nil {
			return err
		}
		kv.dir = dir
		kv.buckets = dir + 16
		kv.groupCRC = kv.buckets + n*8
		kv.meta = kv.groupCRC + groups(n)*8
		if err := tx.Store(dir, n); err != nil {
			return err
		}
		if err := tx.Store(dir+8, wordsCRC(n)); err != nil {
			return err
		}
		zero := make([]byte, n*8)
		if err := tx.StoreBytes(kv.buckets, zero); err != nil {
			return err
		}
		for g := uint64(0); g < groups(n); g++ {
			lo, hi := g*slotGroup, min((g+1)*slotGroup, n)
			if err := tx.Store(kv.groupCRC+g*8, wordsCRC(make([]uint64, hi-lo)...)); err != nil {
				return err
			}
		}
		// Meta words start zeroed: no config written, no manifest pending.
		// The checksums still cover them so later flips are detected.
		for _, off := range []uint64{kvMetaCfg, kvMetaMani} {
			if err := tx.Store(kv.meta+off, 0); err != nil {
				return err
			}
			if err := tx.Store(kv.meta+off+8, wordsCRC(0)); err != nil {
				return err
			}
		}
		// Replication cursor {epoch, seq} starts at zero: never replicated.
		if err := kv.writeReplCursorTx(tx, 0, 0); err != nil {
			return err
		}
		return tx.SetRoot(dir)
	})
	if err != nil {
		return nil, err
	}
	return kv, nil
}

// AttachKVStore reconnects to a store previously created in the pool,
// verifying the directory header's checksum and the config/manifest meta
// slots first: a store whose routing metadata cannot be trusted must not
// serve at all, because a wrong shard count silently misroutes every key.
func AttachKVStore(p engine.Pool) (*KVStore, error) {
	dir := p.Root()
	kv := &KVStore{pool: p, dir: dir, buckets: dir + 16}
	err := p.Tx(func(tx engine.Tx) error {
		n := tx.Load(dir)
		if tx.Load(dir+8) != wordsCRC(n) {
			return fmt.Errorf("%w: directory header", ErrDataCorrupt)
		}
		kv.nBuckets = n
		kv.groupCRC = kv.buckets + n*8
		kv.meta = kv.groupCRC + groups(n)*8
		for _, m := range []struct {
			off  uint64
			name string
		}{{kvMetaCfg, "config"}, {kvMetaMani, "manifest pointer"}} {
			w := tx.Load(kv.meta + m.off)
			if tx.Load(kv.meta+m.off+8) != wordsCRC(w) {
				return fmt.Errorf("%w: %s meta slot", ErrDataCorrupt, m.name)
			}
		}
		return kv.verifyReplCursorTx(tx)
	})
	if err != nil {
		return nil, err
	}
	return kv, nil
}

// fibHash spreads keys across buckets (Fibonacci hashing).
func (kv *KVStore) bucket(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return h & (kv.nBuckets - 1)
}

// loadSlot reads bucket slot b after verifying its group checksum.
func (kv *KVStore) loadSlot(tx engine.Tx, b uint64) (uint64, error) {
	g := b / slotGroup
	lo, hi := g*slotGroup, min((g+1)*slotGroup, kv.nBuckets)
	words := make([]uint64, 0, slotGroup)
	for i := lo; i < hi; i++ {
		words = append(words, tx.Load(kv.buckets+i*8))
	}
	if tx.Load(kv.groupCRC+g*8) != wordsCRC(words...) {
		return 0, fmt.Errorf("%w: bucket group %d", ErrDataCorrupt, g)
	}
	return words[b-lo], nil
}

// storeSlot writes bucket slot b and refreshes its group checksum in the
// same transaction.
func (kv *KVStore) storeSlot(tx engine.Tx, b, val uint64) error {
	if err := tx.Store(kv.buckets+b*8, val); err != nil {
		return err
	}
	g := b / slotGroup
	lo, hi := g*slotGroup, min((g+1)*slotGroup, kv.nBuckets)
	words := make([]uint64, 0, slotGroup)
	for i := lo; i < hi; i++ {
		words = append(words, tx.Load(kv.buckets+i*8))
	}
	return tx.Store(kv.groupCRC+g*8, wordsCRC(words...))
}

// loadEntry reads and verifies one chain entry.
func loadEntry(tx engine.Tx, e uint64) (key, next, val uint64, err error) {
	key, next, val = tx.Load(e+kvKey), tx.Load(e+kvNext), tx.Load(e+kvVal)
	if tx.Load(e+kvCRC) != entryCRC(key, next, val) {
		return 0, 0, 0, fmt.Errorf("%w: entry %#x", ErrDataCorrupt, e)
	}
	return key, next, val, nil
}

// storeValCRC overwrites an entry's value and checksum with one
// contiguous store (they are adjacent by layout).
func storeValCRC(tx engine.Tx, e, key, next, val uint64) error {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], val)
	binary.LittleEndian.PutUint64(buf[8:], entryCRC(key, next, val))
	return tx.StoreBytes(e+kvVal, buf[:])
}

// Put inserts or updates key (the paper's PUT).
func (kv *KVStore) Put(key, val uint64) error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		return kv.putTx(tx, key, val)
	})
}

func (kv *KVStore) putTx(tx engine.Tx, key, val uint64) error {
	b := kv.bucket(key)
	head, err := kv.loadSlot(tx, b)
	if err != nil {
		return err
	}
	for e := head; e != 0; {
		k, next, _, err := loadEntry(tx, e)
		if err != nil {
			return err
		}
		if k == key {
			return storeValCRC(tx, e, key, next, val)
		}
		e = next
	}
	e, err := tx.Alloc(kvEntry)
	if err != nil {
		return err
	}
	var buf [kvEntry]byte
	binary.LittleEndian.PutUint64(buf[kvKey:], key)
	binary.LittleEndian.PutUint64(buf[kvNext:], head)
	binary.LittleEndian.PutUint64(buf[kvVal:], val)
	binary.LittleEndian.PutUint64(buf[kvCRC:], entryCRC(key, head, val))
	if err := tx.StoreBytes(e, buf[:]); err != nil {
		return err
	}
	return kv.storeSlot(tx, b, e)
}

// Get looks up key (the paper's GET). Every entry touched on the way is
// checksum-verified; a mismatch returns ErrDataCorrupt rather than a
// possibly-wrong value.
func (kv *KVStore) Get(key uint64) (val uint64, found bool, err error) {
	err = kv.pool.Tx(func(tx engine.Tx) error {
		e, err := kv.loadSlot(tx, kv.bucket(key))
		if err != nil {
			return err
		}
		for e != 0 {
			k, next, v, err := loadEntry(tx, e)
			if err != nil {
				return err
			}
			if k == key {
				val, found = v, true
				return nil
			}
			e = next
		}
		return nil
	})
	return val, found, err
}

// Delete removes key and reclaims its entry.
func (kv *KVStore) Delete(key uint64) (removed bool, err error) {
	err = kv.pool.Tx(func(tx engine.Tx) error {
		removed, err = kv.deleteTx(tx, key)
		return err
	})
	return removed, err
}

func (kv *KVStore) deleteTx(tx engine.Tx, key uint64) (bool, error) {
	b := kv.bucket(key)
	head, err := kv.loadSlot(tx, b)
	if err != nil {
		return false, err
	}
	var prevE, prevKey, prevVal uint64
	for e := head; e != 0; {
		k, next, v, err := loadEntry(tx, e)
		if err != nil {
			return false, err
		}
		if k == key {
			if prevE == 0 {
				if err := kv.storeSlot(tx, b, next); err != nil {
					return false, err
				}
			} else {
				if err := tx.Store(prevE+kvNext, next); err != nil {
					return false, err
				}
				if err := tx.Store(prevE+kvCRC, entryCRC(prevKey, next, prevVal)); err != nil {
					return false, err
				}
			}
			return true, tx.Free(e, kvEntry)
		}
		prevE, prevKey, prevVal = e, k, v
		e = next
	}
	return false, nil
}

// Op is one mutation in a batched transaction: a PUT of Key=Val, or (when
// Del is set) a delete of Key.
type Op struct {
	Del      bool
	Key, Val uint64
}

// Apply runs every op, in order, inside ONE failure-atomic transaction:
// after a crash either all ops are visible or none are. This is the
// group-commit entry point used by corundum-server's batcher — one
// undo-log commit (and its flush+fence) is amortized over the whole
// batch. The returned slice has one element per op: for deletes, whether
// the key existed; for puts, always true.
func (kv *KVStore) Apply(ops []Op) ([]bool, error) {
	res := make([]bool, len(ops))
	if len(ops) == 0 {
		return res, nil
	}
	err := kv.pool.Tx(func(tx engine.Tx) error {
		for i, op := range ops {
			if op.Del {
				removed, err := kv.deleteTx(tx, op.Key)
				if err != nil {
					return err
				}
				res[i] = removed
			} else {
				if err := kv.putTx(tx, op.Key, op.Val); err != nil {
					return err
				}
				res[i] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Scan visits every key/value pair (in bucket order, not key order) until
// fn returns false. It runs as a read-only transaction with the same
// verified-read discipline as Get.
func (kv *KVStore) Scan(fn func(key, val uint64) bool) error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		for b := uint64(0); b < kv.nBuckets; b++ {
			e, err := kv.loadSlot(tx, b)
			if err != nil {
				return err
			}
			for e != 0 {
				k, next, v, err := loadEntry(tx, e)
				if err != nil {
					return err
				}
				if !fn(k, v) {
					return nil
				}
				e = next
			}
		}
		return nil
	})
}

// ScanRange visits every key/value pair whose key hashes into a bucket in
// [lo, hi) until fn returns false. Migration moves keys in bucket-index
// windows, so "which keys does this batch cover" and "which keys has the
// cursor passed" are both bucket-range questions; ScanRange is the verified
// walk both use.
func (kv *KVStore) ScanRange(lo, hi uint64, fn func(key, val uint64) bool) error {
	if hi > kv.nBuckets {
		hi = kv.nBuckets
	}
	return kv.pool.Tx(func(tx engine.Tx) error {
		for b := lo; b < hi; b++ {
			e, err := kv.loadSlot(tx, b)
			if err != nil {
				return err
			}
			for e != 0 {
				k, next, v, err := loadEntry(tx, e)
				if err != nil {
					return err
				}
				if !fn(k, v) {
					return nil
				}
				e = next
			}
		}
		return nil
	})
}

// Buckets reports the directory size. Migration cursors count buckets, so
// callers need the bound; Bucket reports where a key hashes, which is the
// coordinate system those cursors are compared in.
func (kv *KVStore) Buckets() uint64 { return kv.nBuckets }

// Bucket reports the directory index key hashes to in this store.
func (kv *KVStore) Bucket(key uint64) uint64 { return kv.bucket(key) }

// Len counts entries (test helper).
func (kv *KVStore) Len() (int, error) {
	n := 0
	err := kv.Scan(func(_, _ uint64) bool { n++; return true })
	return n, err
}

// VerifyIntegrity walks the whole store — directory header, every slot
// group, every chain entry — verifying each checksum. It returns nil when
// everything checks out and an ErrDataCorrupt-wrapped diagnosis naming
// the first damaged structure otherwise. Servers run it at startup and on
// demand (SCRUB).
func (kv *KVStore) VerifyIntegrity() error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		n := tx.Load(kv.dir)
		if tx.Load(kv.dir+8) != wordsCRC(n) {
			return fmt.Errorf("%w: directory header", ErrDataCorrupt)
		}
		if n != kv.nBuckets {
			return fmt.Errorf("%w: directory claims %d buckets, attached with %d", ErrDataCorrupt, n, kv.nBuckets)
		}
		for b := uint64(0); b < kv.nBuckets; b++ {
			e, err := kv.loadSlot(tx, b)
			if err != nil {
				return err
			}
			for e != 0 {
				_, next, _, err := loadEntry(tx, e)
				if err != nil {
					return err
				}
				e = next
			}
		}
		for _, m := range []struct {
			off  uint64
			name string
		}{{kvMetaCfg, "config"}, {kvMetaMani, "manifest pointer"}} {
			w := tx.Load(kv.meta + m.off)
			if tx.Load(kv.meta+m.off+8) != wordsCRC(w) {
				return fmt.Errorf("%w: %s meta slot", ErrDataCorrupt, m.name)
			}
		}
		if err := kv.verifyReplCursorTx(tx); err != nil {
			return err
		}
		if mani := tx.Load(kv.meta + kvMetaMani); mani != 0 {
			if _, err := decodeManifest(tx, mani); err != nil {
				return err
			}
		}
		return nil
	})
}
