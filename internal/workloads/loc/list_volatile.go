package loc

// Volatile singly-linked list with sorted insert — the "before" program
// for Table 3's lines-of-code comparison. The persistent version in
// list_persistent.go mirrors it line for line where possible, so the diff
// between the two measures exactly what adding persistence costs.

// VListNode is one volatile list cell.
type VListNode struct {
	Val  int64
	Next *VListNode
}

// VList is a sorted singly-linked list.
type VList struct {
	head *VListNode
	len  int
}

// NewVList returns an empty list.
func NewVList() *VList {
	return &VList{}
}

// Insert adds v keeping the list sorted (duplicates allowed).
func (l *VList) Insert(v int64) {
	node := &VListNode{Val: v}
	slot := &l.head
	for *slot != nil && (*slot).Val < v {
		slot = &(*slot).Next
	}
	node.Next = *slot
	*slot = node
	l.len++
}

// Remove deletes the first occurrence of v, reporting success.
func (l *VList) Remove(v int64) bool {
	slot := &l.head
	for *slot != nil {
		if (*slot).Val == v {
			*slot = (*slot).Next
			l.len--
			return true
		}
		slot = &(*slot).Next
	}
	return false
}

// Contains reports whether v is present.
func (l *VList) Contains(v int64) bool {
	for n := l.head; n != nil && n.Val <= v; n = n.Next {
		if n.Val == v {
			return true
		}
	}
	return false
}

// Len returns the number of elements.
func (l *VList) Len() int {
	return l.len
}

// Values returns the contents in order.
func (l *VList) Values() []int64 {
	var out []int64
	for n := l.head; n != nil; n = n.Next {
		out = append(out, n.Val)
	}
	return out
}

// Min returns the smallest element.
func (l *VList) Min() (int64, bool) {
	if l.head == nil {
		return 0, false
	}
	return l.head.Val, true
}

// Max returns the largest element.
func (l *VList) Max() (int64, bool) {
	if l.head == nil {
		return 0, false
	}
	n := l.head
	for n.Next != nil {
		n = n.Next
	}
	return n.Val, true
}

// Sum adds up all elements.
func (l *VList) Sum() int64 {
	var total int64
	for n := l.head; n != nil; n = n.Next {
		total += n.Val
	}
	return total
}

// ForEach visits elements in order until f returns false.
func (l *VList) ForEach(f func(v int64) bool) {
	for n := l.head; n != nil; n = n.Next {
		if !f(n.Val) {
			return
		}
	}
}

// IsSorted verifies the ordering invariant.
func (l *VList) IsSorted() bool {
	for n := l.head; n != nil && n.Next != nil; n = n.Next {
		if n.Val > n.Next.Val {
			return false
		}
	}
	return true
}
