package loc

import (
	"math/rand"
	"testing"

	"corundum/internal/core"
	"corundum/internal/pmem"
)

func cfg() core.Config {
	return core.Config{Size: 16 << 20, Journals: 4, Mem: pmem.Options{}}
}

// The persistent ports must behave exactly like their volatile originals.

func TestListsAgree(t *testing.T) {
	vl := NewVList()
	pl, err := OpenPList("", cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer core.ClosePool[ListPool]()

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		v := int64(rng.Intn(100))
		switch rng.Intn(3) {
		case 0, 1:
			vl.Insert(v)
			if err := core.Transaction[ListPool](func(j *core.Journal[ListPool]) error {
				return pl.Insert(j, v)
			}); err != nil {
				t.Fatal(err)
			}
		case 2:
			want := vl.Remove(v)
			var got bool
			if err := core.Transaction[ListPool](func(j *core.Journal[ListPool]) error {
				var err error
				got, err = pl.Remove(j, v)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("step %d: remove(%d) = %v, volatile %v", i, v, got, want)
			}
		}
	}
	if vl.Len() != pl.Len() {
		t.Fatalf("len %d vs %d", vl.Len(), pl.Len())
	}
	wantVals := vl.Values()
	gotVals := pl.Values()
	for i := range wantVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("values diverge at %d: %d vs %d", i, gotVals[i], wantVals[i])
		}
	}
	for v := int64(0); v < 100; v++ {
		if vl.Contains(v) != pl.Contains(v) {
			t.Fatalf("contains(%d) diverges", v)
		}
	}
}

func TestTreesAgree(t *testing.T) {
	vt := NewVTree()
	pt, err := OpenPTree("", cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer core.ClosePool[TreePool]()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		k, v := int64(rng.Intn(200)), int64(rng.Intn(1000))
		vt.Put(k, v)
		if err := core.Transaction[TreePool](func(j *core.Journal[TreePool]) error {
			return pt.Put(j, k, v)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if vt.Size() != pt.Size() {
		t.Fatalf("size %d vs %d", vt.Size(), pt.Size())
	}
	for k := int64(0); k < 200; k++ {
		wv, wok := vt.Get(k)
		gv, gok := pt.Get(k)
		if wok != gok || wv != gv {
			t.Fatalf("get(%d): %d,%v vs %d,%v", k, gv, gok, wv, wok)
		}
	}
	wmin, _ := vt.Min()
	gmin, _ := pt.Min()
	if wmin != gmin {
		t.Fatalf("min %d vs %d", gmin, wmin)
	}
	var wkeys, gkeys []int64
	vt.InOrder(func(k, _ int64) { wkeys = append(wkeys, k) })
	pt.InOrder(func(k, _ int64) { gkeys = append(gkeys, k) })
	if len(wkeys) != len(gkeys) {
		t.Fatalf("inorder lengths %d vs %d", len(gkeys), len(wkeys))
	}
	for i := range wkeys {
		if wkeys[i] != gkeys[i] {
			t.Fatalf("inorder diverges at %d", i)
		}
	}
}

func TestMapsAgree(t *testing.T) {
	vm := NewVMap()
	pm, err := OpenPMap("", cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer core.ClosePool[MapPool]()

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 600; i++ {
		k := int64(rng.Intn(150))
		switch rng.Intn(4) {
		case 0, 1:
			v := int64(rng.Intn(1000))
			vm.Put(k, v)
			if err := core.Transaction[MapPool](func(j *core.Journal[MapPool]) error {
				return pm.Put(j, k, v)
			}); err != nil {
				t.Fatal(err)
			}
		case 2:
			wv, wok := vm.Get(k)
			gv, gok := pm.Get(k)
			if wok != gok || wv != gv {
				t.Fatalf("get(%d): %d,%v vs %d,%v", k, gv, gok, wv, wok)
			}
		case 3:
			want := vm.Delete(k)
			var got bool
			if err := core.Transaction[MapPool](func(j *core.Journal[MapPool]) error {
				var err error
				got, err = pm.Delete(j, k)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("delete(%d) = %v, volatile %v", k, got, want)
			}
		}
	}
	if vm.Size() != pm.Size() {
		t.Fatalf("size %d vs %d", vm.Size(), pm.Size())
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.VolatileLoC < 40 {
			t.Errorf("%s: volatile implementation suspiciously small (%d lines)", r.App, r.VolatileLoC)
		}
		if r.AddedLines <= 0 {
			t.Errorf("%s: persistence added %d lines", r.App, r.AddedLines)
		}
		// The paper's claim: Corundum ports stay well under PMDK's +20-31%
		// growth. Go needs more ceremony than Rust (journals are explicit
		// parameters), so we hold the port to staying under 60%% net growth
		// and record the measured value in EXPERIMENTS.md.
		if r.AddedPercent >= 60 {
			t.Errorf("%s: net growth %.1f%%, too far from the paper's shape", r.App, r.AddedPercent)
		}
		if r.TouchedLines < r.AddedLines {
			t.Errorf("%s: touched (%d) < added (%d)?", r.App, r.TouchedLines, r.AddedLines)
		}
	}
}

func TestLCS(t *testing.T) {
	if got := lcs([]string{"a", "b", "c"}, []string{"a", "x", "c"}); got != 2 {
		t.Fatalf("lcs = %d, want 2", got)
	}
	if got := lcs(nil, []string{"a"}); got != 0 {
		t.Fatalf("lcs with empty = %d", got)
	}
	if got := addedLines([]string{"a", "b"}, []string{"a", "b", "c", "d"}); got != 2 {
		t.Fatalf("addedLines = %d, want 2", got)
	}
}

// The PMDK-style ports must also behave like the volatile originals.

func TestMListAgrees(t *testing.T) {
	vl := NewVList()
	ml, err := OpenMList(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		v := int64(rng.Intn(80))
		if rng.Intn(3) != 2 {
			vl.Insert(v)
			if err := ml.Insert(v); err != nil {
				t.Fatal(err)
			}
		} else {
			want := vl.Remove(v)
			got, err := ml.Remove(v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("step %d: remove(%d) = %v want %v", i, v, got, want)
			}
		}
	}
	gotVals, err := ml.Values()
	if err != nil {
		t.Fatal(err)
	}
	wantVals := vl.Values()
	if len(gotVals) != len(wantVals) {
		t.Fatalf("lengths %d vs %d", len(gotVals), len(wantVals))
	}
	for i := range wantVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("idx %d: %d vs %d", i, gotVals[i], wantVals[i])
		}
	}
	sorted, _ := ml.IsSorted()
	if !sorted {
		t.Fatal("MList not sorted")
	}
	wmin, wok := vl.Min()
	gmin, gok, _ := ml.Min()
	if wok != gok || wmin != gmin {
		t.Fatalf("min %d,%v vs %d,%v", gmin, gok, wmin, wok)
	}
	wmax, _ := vl.Max()
	gmax, _, _ := ml.Max()
	if wmax != gmax {
		t.Fatalf("max %d vs %d", gmax, wmax)
	}
	gsum, _ := ml.Sum()
	if gsum != vl.Sum() {
		t.Fatalf("sum %d vs %d", gsum, vl.Sum())
	}
}

func TestMTreeAgrees(t *testing.T) {
	vt := NewVTree()
	mt, err := OpenMTree(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		k, v := int64(rng.Intn(150)), int64(rng.Intn(1000))
		vt.Put(k, v)
		if err := mt.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	gs, _ := mt.Size()
	if gs != vt.Size() {
		t.Fatalf("size %d vs %d", gs, vt.Size())
	}
	for k := int64(0); k < 150; k++ {
		wv, wok := vt.Get(k)
		gv, gok, _ := mt.Get(k)
		if wok != gok || wv != gv {
			t.Fatalf("get(%d): %d,%v vs %d,%v", k, gv, gok, wv, wok)
		}
	}
	gh, _ := mt.Height()
	if gh != vt.Height() {
		t.Fatalf("height %d vs %d", gh, vt.Height())
	}
	gc, _ := mt.CountRange(10, 100)
	if gc != vt.CountRange(10, 100) {
		t.Fatalf("countrange %d vs %d", gc, vt.CountRange(10, 100))
	}
}

func TestMMapAgrees(t *testing.T) {
	vm := NewVMap()
	mm, err := OpenMMap(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 400; i++ {
		k := int64(rng.Intn(120))
		switch rng.Intn(4) {
		case 0, 1:
			v := int64(rng.Intn(1000))
			vm.Put(k, v)
			if err := mm.Put(k, v); err != nil {
				t.Fatal(err)
			}
		case 2:
			wv, wok := vm.Get(k)
			gv, gok, err := mm.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if wok != gok || wv != gv {
				t.Fatalf("get(%d): %d,%v vs %d,%v", k, gv, gok, wv, wok)
			}
		case 3:
			want := vm.Delete(k)
			got, err := mm.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("delete(%d): %v vs %v", k, got, want)
			}
		}
	}
	gs, _ := mm.Size()
	if gs != vm.Size() {
		t.Fatalf("size %d vs %d", gs, vm.Size())
	}
	gk, _ := mm.Keys()
	if len(gk) != len(vm.Keys()) {
		t.Fatalf("keys %d vs %d", len(gk), len(vm.Keys()))
	}
	gmc, _ := mm.MaxChain()
	if gmc != vm.MaxChain() {
		t.Fatalf("maxchain %d vs %d", gmc, vm.MaxChain())
	}
}
