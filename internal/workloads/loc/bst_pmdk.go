package loc

// PMDK-style port of bst_volatile.go (see list_pmdk.go for the model).

import (
	"corundum/internal/baselines/engine"
	"corundum/internal/baselines/pmdk"
)

// Node layout: [key][val][left][right].
const (
	mTreeKey   = 0
	mTreeVal   = 8
	mTreeLeft  = 16
	mTreeRight = 24
	mTreeNode  = 32
)

// MTree is the PMDK-style binary search tree. The root block holds
// [rootNode u64][size u64].
type MTree struct {
	pool engine.Pool
	root uint64
}

// OpenMTree creates the tree in a fresh PMDK-model pool.
func OpenMTree(size int) (*MTree, error) {
	p, err := pmdk.Lib{}.Open(engine.Config{Size: size})
	if err != nil {
		return nil, err
	}
	t := &MTree{pool: p}
	err = p.Tx(func(tx engine.Tx) error {
		root, err := tx.Alloc(16)
		if err != nil {
			return err
		}
		if err := tx.Store(root, 0); err != nil {
			return err
		}
		if err := tx.Store(root+8, 0); err != nil {
			return err
		}
		t.root = root
		return tx.SetRoot(root)
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Close releases the pool.
func (t *MTree) Close() error { return t.pool.Close() }

// Put inserts or updates key.
func (t *MTree) Put(key, val int64) error {
	return t.pool.Tx(func(tx engine.Tx) error {
		slot := t.root + 0
		for {
			n := tx.Load(slot)
			if n == 0 {
				break
			}
			k := int64(tx.Load(n + mTreeKey))
			switch {
			case key == k:
				return tx.Store(n+mTreeVal, uint64(val))
			case key < k:
				slot = n + mTreeLeft
			default:
				slot = n + mTreeRight
			}
		}
		node, err := tx.Alloc(mTreeNode)
		if err != nil {
			return err
		}
		if err := tx.Store(node+mTreeKey, uint64(key)); err != nil {
			return err
		}
		if err := tx.Store(node+mTreeVal, uint64(val)); err != nil {
			return err
		}
		if err := tx.Store(node+mTreeLeft, 0); err != nil {
			return err
		}
		if err := tx.Store(node+mTreeRight, 0); err != nil {
			return err
		}
		if err := tx.Store(slot, node); err != nil {
			return err
		}
		return tx.Store(t.root+8, tx.Load(t.root+8)+1)
	})
}

// Get looks up key.
func (t *MTree) Get(key int64) (int64, bool, error) {
	var val int64
	found := false
	err := t.pool.Tx(func(tx engine.Tx) error {
		n := tx.Load(t.root)
		for n != 0 {
			k := int64(tx.Load(n + mTreeKey))
			switch {
			case key == k:
				val, found = int64(tx.Load(n+mTreeVal)), true
				return nil
			case key < k:
				n = tx.Load(n + mTreeLeft)
			default:
				n = tx.Load(n + mTreeRight)
			}
		}
		return nil
	})
	return val, found, err
}

// Min returns the smallest key.
func (t *MTree) Min() (int64, bool, error) {
	var key int64
	ok := false
	err := t.pool.Tx(func(tx engine.Tx) error {
		n := tx.Load(t.root)
		if n == 0 {
			return nil
		}
		for l := tx.Load(n + mTreeLeft); l != 0; l = tx.Load(n + mTreeLeft) {
			n = l
		}
		key, ok = int64(tx.Load(n+mTreeKey)), true
		return nil
	})
	return key, ok, err
}

// Size returns the number of keys.
func (t *MTree) Size() (int, error) {
	var n uint64
	err := t.pool.Tx(func(tx engine.Tx) error {
		n = tx.Load(t.root + 8)
		return nil
	})
	return int(n), err
}

// InOrder visits keys in ascending order.
func (t *MTree) InOrder(f func(key, val int64)) error {
	return t.pool.Tx(func(tx engine.Tx) error {
		var walk func(n uint64)
		walk = func(n uint64) {
			if n == 0 {
				return
			}
			walk(tx.Load(n + mTreeLeft))
			f(int64(tx.Load(n+mTreeKey)), int64(tx.Load(n+mTreeVal)))
			walk(tx.Load(n + mTreeRight))
		}
		walk(tx.Load(t.root))
		return nil
	})
}

// Max returns the largest key.
func (t *MTree) Max() (int64, bool, error) {
	var key int64
	ok := false
	err := t.pool.Tx(func(tx engine.Tx) error {
		n := tx.Load(t.root)
		if n == 0 {
			return nil
		}
		for r := tx.Load(n + mTreeRight); r != 0; r = tx.Load(n + mTreeRight) {
			n = r
		}
		key, ok = int64(tx.Load(n+mTreeKey)), true
		return nil
	})
	return key, ok, err
}

// Height returns the tree height (0 for empty).
func (t *MTree) Height() (int, error) {
	height := 0
	err := t.pool.Tx(func(tx engine.Tx) error {
		var h func(n uint64) int
		h = func(n uint64) int {
			if n == 0 {
				return 0
			}
			l, r := h(tx.Load(n+mTreeLeft)), h(tx.Load(n+mTreeRight))
			if l > r {
				return l + 1
			}
			return r + 1
		}
		height = h(tx.Load(t.root))
		return nil
	})
	return height, err
}

// CountRange counts keys in [lo, hi].
func (t *MTree) CountRange(lo, hi int64) (int, error) {
	count := 0
	err := t.pool.Tx(func(tx engine.Tx) error {
		var walk func(n uint64)
		walk = func(n uint64) {
			if n == 0 {
				return
			}
			k := int64(tx.Load(n + mTreeKey))
			if k > lo {
				walk(tx.Load(n + mTreeLeft))
			}
			if k >= lo && k <= hi {
				count++
			}
			if k < hi {
				walk(tx.Load(n + mTreeRight))
			}
		}
		walk(tx.Load(t.root))
		return nil
	})
	return count, err
}
