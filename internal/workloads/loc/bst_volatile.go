package loc

// Volatile binary search tree — the "before" program for Table 3's
// binary-tree row.

// VTreeNode is one volatile tree node.
type VTreeNode struct {
	Key         int64
	Val         int64
	Left, Right *VTreeNode
}

// VTree is an (unbalanced) binary search tree.
type VTree struct {
	root *VTreeNode
	size int
}

// NewVTree returns an empty tree.
func NewVTree() *VTree {
	return &VTree{}
}

// Put inserts or updates key.
func (t *VTree) Put(key, val int64) {
	slot := &t.root
	for *slot != nil {
		switch {
		case key == (*slot).Key:
			(*slot).Val = val
			return
		case key < (*slot).Key:
			slot = &(*slot).Left
		default:
			slot = &(*slot).Right
		}
	}
	*slot = &VTreeNode{Key: key, Val: val}
	t.size++
}

// Get looks up key.
func (t *VTree) Get(key int64) (int64, bool) {
	n := t.root
	for n != nil {
		switch {
		case key == n.Key:
			return n.Val, true
		case key < n.Key:
			n = n.Left
		default:
			n = n.Right
		}
	}
	return 0, false
}

// Min returns the smallest key.
func (t *VTree) Min() (int64, bool) {
	if t.root == nil {
		return 0, false
	}
	n := t.root
	for n.Left != nil {
		n = n.Left
	}
	return n.Key, true
}

// Size returns the number of keys.
func (t *VTree) Size() int {
	return t.size
}

// InOrder visits keys in ascending order.
func (t *VTree) InOrder(f func(key, val int64)) {
	var walk func(n *VTreeNode)
	walk = func(n *VTreeNode) {
		if n == nil {
			return
		}
		walk(n.Left)
		f(n.Key, n.Val)
		walk(n.Right)
	}
	walk(t.root)
}

// Max returns the largest key.
func (t *VTree) Max() (int64, bool) {
	if t.root == nil {
		return 0, false
	}
	n := t.root
	for n.Right != nil {
		n = n.Right
	}
	return n.Key, true
}

// Height returns the tree height (0 for empty).
func (t *VTree) Height() int {
	var h func(n *VTreeNode) int
	h = func(n *VTreeNode) int {
		if n == nil {
			return 0
		}
		l, r := h(n.Left), h(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

// CountRange counts keys in [lo, hi].
func (t *VTree) CountRange(lo, hi int64) int {
	count := 0
	var walk func(n *VTreeNode)
	walk = func(n *VTreeNode) {
		if n == nil {
			return
		}
		if n.Key > lo {
			walk(n.Left)
		}
		if n.Key >= lo && n.Key <= hi {
			count++
		}
		if n.Key < hi {
			walk(n.Right)
		}
	}
	walk(t.root)
	return count
}
