package loc

// Persistent binary search tree: the Corundum port of bst_volatile.go for
// Table 3's binary-tree row.

import "corundum/internal/core"

// TreePool is the pool tag for the persistent tree.
type TreePool struct{}

type pTreeLink = core.PCell[core.PBox[PTreeNode, TreePool], TreePool]

// PTreeNode is one persistent tree node.
type PTreeNode struct {
	Key         int64
	Val         core.PCell[int64, TreePool]
	Left, Right pTreeLink
}

type pTreeRoot struct {
	Root pTreeLink
	Size core.PCell[int64, TreePool]
}

// PTree is a persistent (unbalanced) binary search tree.
type PTree struct {
	root core.Root[pTreeRoot, TreePool]
}

// OpenPTree opens (or creates) the tree's pool.
func OpenPTree(path string, cfg core.Config) (*PTree, error) {
	root, err := core.Open[pTreeRoot, TreePool](path, cfg)
	if err != nil {
		return nil, err
	}
	return &PTree{root: root}, nil
}

// Put inserts or updates key.
func (t *PTree) Put(j *core.Journal[TreePool], key, val int64) error {
	r := t.root.Deref()
	slot := &r.Root
	for {
		cur := slot.Get()
		if cur.IsNull() {
			break
		}
		n := cur.DerefJ(j)
		switch {
		case key == n.Key:
			return n.Val.Set(j, val)
		case key < n.Key:
			slot = &n.Left
		default:
			slot = &n.Right
		}
	}
	node, err := core.NewPBox[PTreeNode, TreePool](j, PTreeNode{
		Key: key,
		Val: core.NewPCell[int64, TreePool](val),
	})
	if err != nil {
		return err
	}
	if err := slot.Set(j, node); err != nil {
		return err
	}
	return r.Size.Update(j, func(n int64) int64 { return n + 1 })
}

// Get looks up key (no transaction needed).
func (t *PTree) Get(key int64) (int64, bool) {
	cur := t.root.Deref().Root.Get()
	for !cur.IsNull() {
		n := cur.Deref()
		switch {
		case key == n.Key:
			return n.Val.Get(), true
		case key < n.Key:
			cur = n.Left.Get()
		default:
			cur = n.Right.Get()
		}
	}
	return 0, false
}

// Min returns the smallest key.
func (t *PTree) Min() (int64, bool) {
	cur := t.root.Deref().Root.Get()
	if cur.IsNull() {
		return 0, false
	}
	for {
		n := cur.Deref()
		left := n.Left.Get()
		if left.IsNull() {
			return n.Key, true
		}
		cur = left
	}
}

// Size returns the number of keys.
func (t *PTree) Size() int {
	return int(t.root.Deref().Size.Get())
}

// InOrder visits keys in ascending order.
func (t *PTree) InOrder(f func(key, val int64)) {
	var walk func(cur core.PBox[PTreeNode, TreePool])
	walk = func(cur core.PBox[PTreeNode, TreePool]) {
		if cur.IsNull() {
			return
		}
		n := cur.Deref()
		walk(n.Left.Get())
		f(n.Key, n.Val.Get())
		walk(n.Right.Get())
	}
	walk(t.root.Deref().Root.Get())
}

// Max returns the largest key.
func (t *PTree) Max() (int64, bool) {
	cur := t.root.Deref().Root.Get()
	if cur.IsNull() {
		return 0, false
	}
	for {
		n := cur.Deref()
		right := n.Right.Get()
		if right.IsNull() {
			return n.Key, true
		}
		cur = right
	}
}

// Height returns the tree height (0 for empty).
func (t *PTree) Height() int {
	var h func(cur core.PBox[PTreeNode, TreePool]) int
	h = func(cur core.PBox[PTreeNode, TreePool]) int {
		if cur.IsNull() {
			return 0
		}
		n := cur.Deref()
		l, r := h(n.Left.Get()), h(n.Right.Get())
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root.Deref().Root.Get())
}

// CountRange counts keys in [lo, hi].
func (t *PTree) CountRange(lo, hi int64) int {
	count := 0
	var walk func(cur core.PBox[PTreeNode, TreePool])
	walk = func(cur core.PBox[PTreeNode, TreePool]) {
		if cur.IsNull() {
			return
		}
		n := cur.Deref()
		if n.Key > lo {
			walk(n.Left.Get())
		}
		if n.Key >= lo && n.Key <= hi {
			count++
		}
		if n.Key < hi {
			walk(n.Right.Get())
		}
	}
	walk(t.root.Deref().Root.Get())
	return count
}
