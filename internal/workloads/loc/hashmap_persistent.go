package loc

// Persistent chained hash map: the Corundum port of hashmap_volatile.go
// for Table 3's HashMap row.

import "corundum/internal/core"

// MapPool is the pool tag for the persistent hash map.
type MapPool struct{}

const pMapBuckets = 256

type pMapLink = core.PCell[core.PBox[PMapEntry, MapPool], MapPool]

// PMapEntry is one persistent chain entry.
type PMapEntry struct {
	Key  int64
	Val  core.PCell[int64, MapPool]
	Next pMapLink
}

type pMapRoot struct {
	Buckets [pMapBuckets]pMapLink
	Size    core.PCell[int64, MapPool]
}

// PMap is a persistent chained hash map.
type PMap struct {
	root core.Root[pMapRoot, MapPool]
}

// OpenPMap opens (or creates) the map's pool.
func OpenPMap(path string, cfg core.Config) (*PMap, error) {
	root, err := core.Open[pMapRoot, MapPool](path, cfg)
	if err != nil {
		return nil, err
	}
	return &PMap{root: root}, nil
}

func pMapBucket(key int64) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h % pMapBuckets)
}

// Put inserts or updates key.
func (m *PMap) Put(j *core.Journal[MapPool], key, val int64) error {
	r := m.root.Deref()
	b := pMapBucket(key)
	for cur := r.Buckets[b].Get(); !cur.IsNull(); cur = cur.DerefJ(j).Next.Get() {
		e := cur.DerefJ(j)
		if e.Key == key {
			return e.Val.Set(j, val)
		}
	}
	entry, err := core.NewPBox[PMapEntry, MapPool](j, PMapEntry{
		Key:  key,
		Val:  core.NewPCell[int64, MapPool](val),
		Next: core.NewPCell[core.PBox[PMapEntry, MapPool], MapPool](r.Buckets[b].Get()),
	})
	if err != nil {
		return err
	}
	if err := r.Buckets[b].Set(j, entry); err != nil {
		return err
	}
	return r.Size.Update(j, func(n int64) int64 { return n + 1 })
}

// Get looks up key (no transaction needed).
func (m *PMap) Get(key int64) (int64, bool) {
	for cur := m.root.Deref().Buckets[pMapBucket(key)].Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
		e := cur.Deref()
		if e.Key == key {
			return e.Val.Get(), true
		}
	}
	return 0, false
}

// Delete removes key, reporting success.
func (m *PMap) Delete(j *core.Journal[MapPool], key int64) (bool, error) {
	r := m.root.Deref()
	slot := &r.Buckets[pMapBucket(key)]
	for {
		cur := slot.Get()
		if cur.IsNull() {
			return false, nil
		}
		e := cur.DerefJ(j)
		if e.Key == key {
			if err := slot.Set(j, e.Next.Get()); err != nil {
				return false, err
			}
			if err := cur.Free(j); err != nil {
				return false, err
			}
			return true, r.Size.Update(j, func(n int64) int64 { return n - 1 })
		}
		slot = &e.Next
	}
}

// Size returns the number of entries.
func (m *PMap) Size() int {
	return int(m.root.Deref().Size.Get())
}

// Keys returns all keys (unordered).
func (m *PMap) Keys() []int64 {
	r := m.root.Deref()
	out := make([]int64, 0, m.Size())
	for b := 0; b < pMapBuckets; b++ {
		for cur := r.Buckets[b].Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
			out = append(out, cur.Deref().Key)
		}
	}
	return out
}

// ForEach visits every entry until f returns false.
func (m *PMap) ForEach(f func(key, val int64) bool) {
	r := m.root.Deref()
	for b := 0; b < pMapBuckets; b++ {
		for cur := r.Buckets[b].Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
			e := cur.Deref()
			if !f(e.Key, e.Val.Get()) {
				return
			}
		}
	}
}

// MaxChain reports the longest bucket chain (load-factor diagnostics).
func (m *PMap) MaxChain() int {
	r := m.root.Deref()
	longest := 0
	for b := 0; b < pMapBuckets; b++ {
		n := 0
		for cur := r.Buckets[b].Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
			n++
		}
		if n > longest {
			longest = n
		}
	}
	return longest
}
