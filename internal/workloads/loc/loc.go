// Package loc reproduces Table 3: the lines of code needed to add
// persistence to a conventional program. It holds parallel volatile and
// Corundum implementations of a linked list, a binary tree, and a hash
// map, and measures the port cost with a line diff (added lines), the
// same metric the paper reports for Rust+Corundum vs C+++PMDK.
package loc

import (
	_ "embed"
	"strings"
)

//go:embed list_volatile.go
var listVolatileSrc string

//go:embed list_persistent.go
var listPersistentSrc string

//go:embed bst_volatile.go
var bstVolatileSrc string

//go:embed bst_persistent.go
var bstPersistentSrc string

//go:embed hashmap_volatile.go
var hashmapVolatileSrc string

//go:embed hashmap_persistent.go
var hashmapPersistentSrc string

//go:embed list_pmdk.go
var listPMDKSrc string

//go:embed bst_pmdk.go
var bstPMDKSrc string

//go:embed hashmap_pmdk.go
var hashmapPMDKSrc string

// Row is one Table 3 measurement: the cost of porting a volatile Go
// program to Corundum-Go versus porting it to a PMDK-style (untyped,
// offset-based, libpmemobj-model) API in the same language.
type Row struct {
	App          string
	VolatileLoC  int
	AddedLines   int     // net lines the Corundum port added
	AddedPercent float64 // AddedLines relative to the volatile program
	TouchedLines int     // Corundum port lines not shared verbatim (LCS diff)
	PMDKAdded    int     // net lines the PMDK-style port added
	PMDKPercent  float64 // PMDKAdded relative to the volatile program
}

// Table3 computes the lines-of-code comparison for the three structures.
func Table3() []Row {
	apps := []struct {
		name            string
		vol, pers, pmdk string
	}{
		{"Linked List", listVolatileSrc, listPersistentSrc, listPMDKSrc},
		{"Binary tree", bstVolatileSrc, bstPersistentSrc, bstPMDKSrc},
		{"HashMap", hashmapVolatileSrc, hashmapPersistentSrc, hashmapPMDKSrc},
	}
	rows := make([]Row, 0, len(apps))
	for _, app := range apps {
		vol := codeLines(app.vol)
		pers := codeLines(app.pers)
		pmdk := codeLines(app.pmdk)
		added := len(pers) - len(vol) // the paper's "+N lines" metric
		rows = append(rows, Row{
			App:          app.name,
			VolatileLoC:  len(vol),
			AddedLines:   added,
			AddedPercent: 100 * float64(added) / float64(len(vol)),
			TouchedLines: addedLines(vol, pers),
			PMDKAdded:    len(pmdk) - len(vol),
			PMDKPercent:  100 * float64(len(pmdk)-len(vol)) / float64(len(vol)),
		})
	}
	return rows
}

// codeLines strips blank lines and pure comment lines, normalizing
// whitespace, so the diff measures code rather than prose.
func codeLines(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		out = append(out, trimmed)
	}
	return out
}

// addedLines counts lines in pers that are not matched by the longest
// common subsequence with vol — i.e., the lines the persistent port added
// or rewrote.
func addedLines(vol, pers []string) int {
	return len(pers) - lcs(vol, pers)
}

// lcs computes the longest-common-subsequence length with the classic DP
// (the inputs are a few hundred lines, so O(n*m) is fine).
func lcs(a, b []string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for k := 1; k <= len(b); k++ {
			if a[i-1] == b[k-1] {
				cur[k] = prev[k-1] + 1
			} else if prev[k] >= cur[k-1] {
				cur[k] = prev[k]
			} else {
				cur[k] = cur[k-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
