package loc

// PMDK-style port of hashmap_volatile.go (see list_pmdk.go for the model).

import (
	"corundum/internal/baselines/engine"
	"corundum/internal/baselines/pmdk"
)

const mMapBuckets = 256

// Entry layout: [key][val][next].
const (
	mMapKey   = 0
	mMapVal   = 8
	mMapNext  = 16
	mMapEntry = 24
)

// MMap is the PMDK-style chained hash map. The root block holds
// [size u64][buckets ...].
type MMap struct {
	pool engine.Pool
	root uint64
}

// OpenMMap creates the map in a fresh PMDK-model pool.
func OpenMMap(size int) (*MMap, error) {
	p, err := pmdk.Lib{}.Open(engine.Config{Size: size})
	if err != nil {
		return nil, err
	}
	m := &MMap{pool: p}
	err = p.Tx(func(tx engine.Tx) error {
		root, err := tx.Alloc(8 + mMapBuckets*8)
		if err != nil {
			return err
		}
		zero := make([]byte, 8+mMapBuckets*8)
		if err := tx.StoreBytes(root, zero); err != nil {
			return err
		}
		m.root = root
		return tx.SetRoot(root)
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Close releases the pool.
func (m *MMap) Close() error { return m.pool.Close() }

func (m *MMap) bucket(key int64) uint64 {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return m.root + 8 + (h%mMapBuckets)*8
}

// Put inserts or updates key.
func (m *MMap) Put(key, val int64) error {
	return m.pool.Tx(func(tx engine.Tx) error {
		slot := m.bucket(key)
		for e := tx.Load(slot); e != 0; e = tx.Load(e + mMapNext) {
			if int64(tx.Load(e+mMapKey)) == key {
				return tx.Store(e+mMapVal, uint64(val))
			}
		}
		e, err := tx.Alloc(mMapEntry)
		if err != nil {
			return err
		}
		if err := tx.Store(e+mMapKey, uint64(key)); err != nil {
			return err
		}
		if err := tx.Store(e+mMapVal, uint64(val)); err != nil {
			return err
		}
		if err := tx.Store(e+mMapNext, tx.Load(slot)); err != nil {
			return err
		}
		if err := tx.Store(slot, e); err != nil {
			return err
		}
		return tx.Store(m.root, tx.Load(m.root)+1)
	})
}

// Get looks up key.
func (m *MMap) Get(key int64) (int64, bool, error) {
	var val int64
	found := false
	err := m.pool.Tx(func(tx engine.Tx) error {
		for e := tx.Load(m.bucket(key)); e != 0; e = tx.Load(e + mMapNext) {
			if int64(tx.Load(e+mMapKey)) == key {
				val, found = int64(tx.Load(e+mMapVal)), true
				return nil
			}
		}
		return nil
	})
	return val, found, err
}

// Delete removes key, reporting success.
func (m *MMap) Delete(key int64) (bool, error) {
	removed := false
	err := m.pool.Tx(func(tx engine.Tx) error {
		slot := m.bucket(key)
		for {
			e := tx.Load(slot)
			if e == 0 {
				return nil
			}
			if int64(tx.Load(e+mMapKey)) == key {
				if err := tx.Store(slot, tx.Load(e+mMapNext)); err != nil {
					return err
				}
				if err := tx.Free(e, mMapEntry); err != nil {
					return err
				}
				removed = true
				return tx.Store(m.root, tx.Load(m.root)-1)
			}
			slot = e + mMapNext
		}
	})
	return removed, err
}

// Size returns the number of entries.
func (m *MMap) Size() (int, error) {
	var n uint64
	err := m.pool.Tx(func(tx engine.Tx) error {
		n = tx.Load(m.root)
		return nil
	})
	return int(n), err
}

// Keys returns all keys (unordered).
func (m *MMap) Keys() ([]int64, error) {
	var out []int64
	err := m.pool.Tx(func(tx engine.Tx) error {
		for b := uint64(0); b < mMapBuckets; b++ {
			for e := tx.Load(m.root + 8 + b*8); e != 0; e = tx.Load(e + mMapNext) {
				out = append(out, int64(tx.Load(e+mMapKey)))
			}
		}
		return nil
	})
	return out, err
}

// ForEach visits every entry until f returns false.
func (m *MMap) ForEach(f func(key, val int64) bool) error {
	return m.pool.Tx(func(tx engine.Tx) error {
		for b := uint64(0); b < mMapBuckets; b++ {
			for e := tx.Load(m.root + 8 + b*8); e != 0; e = tx.Load(e + mMapNext) {
				if !f(int64(tx.Load(e+mMapKey)), int64(tx.Load(e+mMapVal))) {
					return nil
				}
			}
		}
		return nil
	})
}

// MaxChain reports the longest bucket chain (load-factor diagnostics).
func (m *MMap) MaxChain() (int, error) {
	longest := 0
	err := m.pool.Tx(func(tx engine.Tx) error {
		for b := uint64(0); b < mMapBuckets; b++ {
			n := 0
			for e := tx.Load(m.root + 8 + b*8); e != 0; e = tx.Load(e + mMapNext) {
				n++
			}
			if n > longest {
				longest = n
			}
		}
		return nil
	})
	return longest, err
}
