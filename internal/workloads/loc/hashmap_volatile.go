package loc

// Volatile chained hash map — the "before" program for Table 3's HashMap
// row. A fixed bucket directory with chained entries (no Go map, so the
// persistent port can mirror the structure).

const vMapBuckets = 256

// VMapEntry is one volatile chain entry.
type VMapEntry struct {
	Key  int64
	Val  int64
	Next *VMapEntry
}

// VMap is a chained hash map.
type VMap struct {
	buckets [vMapBuckets]*VMapEntry
	size    int
}

// NewVMap returns an empty map.
func NewVMap() *VMap {
	return &VMap{}
}

func vMapBucket(key int64) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h % vMapBuckets)
}

// Put inserts or updates key.
func (m *VMap) Put(key, val int64) {
	b := vMapBucket(key)
	for e := m.buckets[b]; e != nil; e = e.Next {
		if e.Key == key {
			e.Val = val
			return
		}
	}
	m.buckets[b] = &VMapEntry{Key: key, Val: val, Next: m.buckets[b]}
	m.size++
}

// Get looks up key.
func (m *VMap) Get(key int64) (int64, bool) {
	for e := m.buckets[vMapBucket(key)]; e != nil; e = e.Next {
		if e.Key == key {
			return e.Val, true
		}
	}
	return 0, false
}

// Delete removes key, reporting success.
func (m *VMap) Delete(key int64) bool {
	b := vMapBucket(key)
	slot := &m.buckets[b]
	for *slot != nil {
		if (*slot).Key == key {
			*slot = (*slot).Next
			m.size--
			return true
		}
		slot = &(*slot).Next
	}
	return false
}

// Size returns the number of entries.
func (m *VMap) Size() int {
	return m.size
}

// Keys returns all keys (unordered).
func (m *VMap) Keys() []int64 {
	out := make([]int64, 0, m.size)
	for b := 0; b < vMapBuckets; b++ {
		for e := m.buckets[b]; e != nil; e = e.Next {
			out = append(out, e.Key)
		}
	}
	return out
}

// ForEach visits every entry until f returns false.
func (m *VMap) ForEach(f func(key, val int64) bool) {
	for b := 0; b < vMapBuckets; b++ {
		for e := m.buckets[b]; e != nil; e = e.Next {
			if !f(e.Key, e.Val) {
				return
			}
		}
	}
}

// MaxChain reports the longest bucket chain (load-factor diagnostics).
func (m *VMap) MaxChain() int {
	longest := 0
	for b := 0; b < vMapBuckets; b++ {
		n := 0
		for e := m.buckets[b]; e != nil; e = e.Next {
			n++
		}
		if n > longest {
			longest = n
		}
	}
	return longest
}
