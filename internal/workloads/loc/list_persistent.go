package loc

// Persistent sorted linked list: the Corundum port of list_volatile.go.
// Table 3 measures the lines this port adds: pointer fields become PBox
// wrapped in PCell for interior mutability, mutators gain a journal
// parameter, and construction happens inside transactions. The algorithm
// is untouched.

import "corundum/internal/core"

// ListPool is the pool tag for the persistent list.
type ListPool struct{}

// PListNode is one persistent list cell.
type PListNode struct {
	Val  int64
	Next core.PCell[core.PBox[PListNode, ListPool], ListPool]
}

type pListRoot struct {
	Head core.PCell[core.PBox[PListNode, ListPool], ListPool]
	Len  core.PCell[int64, ListPool]
}

// PList is a sorted persistent singly-linked list.
type PList struct {
	root core.Root[pListRoot, ListPool]
}

// OpenPList opens (or creates) the list's pool.
func OpenPList(path string, cfg core.Config) (*PList, error) {
	root, err := core.Open[pListRoot, ListPool](path, cfg)
	if err != nil {
		return nil, err
	}
	return &PList{root: root}, nil
}

// Insert adds v keeping the list sorted (duplicates allowed).
func (l *PList) Insert(j *core.Journal[ListPool], v int64) error {
	r := l.root.Deref()
	slot := &r.Head
	for {
		cur := slot.Get()
		if cur.IsNull() || cur.DerefJ(j).Val >= v {
			break
		}
		slot = &cur.DerefJ(j).Next
	}
	node, err := core.NewPBox[PListNode, ListPool](j, PListNode{
		Val:  v,
		Next: core.NewPCell[core.PBox[PListNode, ListPool], ListPool](slot.Get()),
	})
	if err != nil {
		return err
	}
	if err := slot.Set(j, node); err != nil {
		return err
	}
	return r.Len.Update(j, func(n int64) int64 { return n + 1 })
}

// Remove deletes the first occurrence of v, reporting success.
func (l *PList) Remove(j *core.Journal[ListPool], v int64) (bool, error) {
	r := l.root.Deref()
	slot := &r.Head
	for {
		cur := slot.Get()
		if cur.IsNull() {
			return false, nil
		}
		if cur.DerefJ(j).Val == v {
			if err := slot.Set(j, cur.DerefJ(j).Next.Get()); err != nil {
				return false, err
			}
			if err := cur.Free(j); err != nil {
				return false, err
			}
			return true, r.Len.Update(j, func(n int64) int64 { return n - 1 })
		}
		slot = &cur.DerefJ(j).Next
	}
}

// Contains reports whether v is present (reads need no transaction).
func (l *PList) Contains(v int64) bool {
	for cur := l.root.Deref().Head.Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
		n := cur.Deref()
		if n.Val == v {
			return true
		}
		if n.Val > v {
			return false
		}
	}
	return false
}

// Len returns the number of elements.
func (l *PList) Len() int {
	return int(l.root.Deref().Len.Get())
}

// Values returns the contents in order.
func (l *PList) Values() []int64 {
	var out []int64
	for cur := l.root.Deref().Head.Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
		out = append(out, cur.Deref().Val)
	}
	return out
}

// DropContents releases the tail when a node is freed mid-list removal.
func (n *PListNode) DropContents(j *core.Journal[ListPool]) error {
	return nil // removal relinks Next before freeing, nothing owned here
}

// Min returns the smallest element.
func (l *PList) Min() (int64, bool) {
	head := l.root.Deref().Head.Get()
	if head.IsNull() {
		return 0, false
	}
	return head.Deref().Val, true
}

// Max returns the largest element.
func (l *PList) Max() (int64, bool) {
	cur := l.root.Deref().Head.Get()
	if cur.IsNull() {
		return 0, false
	}
	for {
		next := cur.Deref().Next.Get()
		if next.IsNull() {
			return cur.Deref().Val, true
		}
		cur = next
	}
}

// Sum adds up all elements.
func (l *PList) Sum() int64 {
	var total int64
	for cur := l.root.Deref().Head.Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
		total += cur.Deref().Val
	}
	return total
}

// ForEach visits elements in order until f returns false.
func (l *PList) ForEach(f func(v int64) bool) {
	for cur := l.root.Deref().Head.Get(); !cur.IsNull(); cur = cur.Deref().Next.Get() {
		if !f(cur.Deref().Val) {
			return
		}
	}
}

// IsSorted verifies the ordering invariant.
func (l *PList) IsSorted() bool {
	cur := l.root.Deref().Head.Get()
	for !cur.IsNull() {
		next := cur.Deref().Next.Get()
		if next.IsNull() {
			return true
		}
		if cur.Deref().Val > next.Deref().Val {
			return false
		}
		cur = next
	}
	return true
}
