package loc

// PMDK-style port of list_volatile.go: the libpmemobj programming model in
// Go — untyped pool offsets, explicit transactions, manual stores through
// the transaction handle. This is Table 3's second comparison column: the
// same algorithm costs more lines (and loses all type safety) without
// Corundum's typed pointers.

import (
	"corundum/internal/baselines/engine"
	"corundum/internal/baselines/pmdk"
)

// Node layout: [val u64][next u64].
const (
	mListVal  = 0
	mListNext = 8
	mListNode = 16
)

// MList is the PMDK-style sorted list. The root block holds
// [head u64][len u64].
type MList struct {
	pool engine.Pool
	root uint64
}

// OpenMList creates the list in a fresh PMDK-model pool.
func OpenMList(size int) (*MList, error) {
	p, err := pmdk.Lib{}.Open(engine.Config{Size: size})
	if err != nil {
		return nil, err
	}
	l := &MList{pool: p}
	err = p.Tx(func(tx engine.Tx) error {
		root, err := tx.Alloc(16)
		if err != nil {
			return err
		}
		if err := tx.Store(root, 0); err != nil {
			return err
		}
		if err := tx.Store(root+8, 0); err != nil {
			return err
		}
		l.root = root
		return tx.SetRoot(root)
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Close releases the pool.
func (l *MList) Close() error { return l.pool.Close() }

// Insert adds v keeping the list sorted (duplicates allowed).
func (l *MList) Insert(v int64) error {
	return l.pool.Tx(func(tx engine.Tx) error {
		slot := l.root + 0
		for {
			cur := tx.Load(slot)
			if cur == 0 || int64(tx.Load(cur+mListVal)) >= v {
				break
			}
			slot = cur + mListNext
		}
		node, err := tx.Alloc(mListNode)
		if err != nil {
			return err
		}
		if err := tx.Store(node+mListVal, uint64(v)); err != nil {
			return err
		}
		if err := tx.Store(node+mListNext, tx.Load(slot)); err != nil {
			return err
		}
		if err := tx.Store(slot, node); err != nil {
			return err
		}
		return tx.Store(l.root+8, tx.Load(l.root+8)+1)
	})
}

// Remove deletes the first occurrence of v, reporting success.
func (l *MList) Remove(v int64) (bool, error) {
	removed := false
	err := l.pool.Tx(func(tx engine.Tx) error {
		slot := l.root + 0
		for {
			cur := tx.Load(slot)
			if cur == 0 {
				return nil
			}
			if int64(tx.Load(cur+mListVal)) == v {
				if err := tx.Store(slot, tx.Load(cur+mListNext)); err != nil {
					return err
				}
				if err := tx.Free(cur, mListNode); err != nil {
					return err
				}
				removed = true
				return tx.Store(l.root+8, tx.Load(l.root+8)-1)
			}
			slot = cur + mListNext
		}
	})
	return removed, err
}

// Contains reports whether v is present.
func (l *MList) Contains(v int64) (bool, error) {
	found := false
	err := l.pool.Tx(func(tx engine.Tx) error {
		for n := tx.Load(l.root); n != 0 && int64(tx.Load(n+mListVal)) <= v; n = tx.Load(n + mListNext) {
			if int64(tx.Load(n+mListVal)) == v {
				found = true
				return nil
			}
		}
		return nil
	})
	return found, err
}

// Len returns the number of elements.
func (l *MList) Len() (int, error) {
	var n uint64
	err := l.pool.Tx(func(tx engine.Tx) error {
		n = tx.Load(l.root + 8)
		return nil
	})
	return int(n), err
}

// Values returns the contents in order.
func (l *MList) Values() ([]int64, error) {
	var out []int64
	err := l.pool.Tx(func(tx engine.Tx) error {
		for n := tx.Load(l.root); n != 0; n = tx.Load(n + mListNext) {
			out = append(out, int64(tx.Load(n+mListVal)))
		}
		return nil
	})
	return out, err
}

// Min returns the smallest element.
func (l *MList) Min() (int64, bool, error) {
	var v int64
	ok := false
	err := l.pool.Tx(func(tx engine.Tx) error {
		head := tx.Load(l.root)
		if head == 0 {
			return nil
		}
		v, ok = int64(tx.Load(head+mListVal)), true
		return nil
	})
	return v, ok, err
}

// Max returns the largest element.
func (l *MList) Max() (int64, bool, error) {
	var v int64
	ok := false
	err := l.pool.Tx(func(tx engine.Tx) error {
		n := tx.Load(l.root)
		if n == 0 {
			return nil
		}
		for next := tx.Load(n + mListNext); next != 0; next = tx.Load(n + mListNext) {
			n = next
		}
		v, ok = int64(tx.Load(n+mListVal)), true
		return nil
	})
	return v, ok, err
}

// Sum adds up all elements.
func (l *MList) Sum() (int64, error) {
	var total int64
	err := l.pool.Tx(func(tx engine.Tx) error {
		for n := tx.Load(l.root); n != 0; n = tx.Load(n + mListNext) {
			total += int64(tx.Load(n + mListVal))
		}
		return nil
	})
	return total, err
}

// IsSorted verifies the ordering invariant.
func (l *MList) IsSorted() (bool, error) {
	sorted := true
	err := l.pool.Tx(func(tx engine.Tx) error {
		for n := tx.Load(l.root); n != 0; {
			next := tx.Load(n + mListNext)
			if next != 0 && int64(tx.Load(n+mListVal)) > int64(tx.Load(next+mListVal)) {
				sorted = false
				return nil
			}
			n = next
		}
		return nil
	})
	return sorted, err
}
