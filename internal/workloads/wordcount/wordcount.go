// Package wordcount implements the paper's scalability workload: a
// MapReduce-style word counter ("grep" in the artifact) where producer
// goroutines push text segments onto a shared persistent stack and
// consumer goroutines pop segments and count word occurrences locally.
// As in the paper, local counts are not merged ("we do not collect the
// local records"), so the measurement isolates library scalability:
// per-thread journals and allocator arenas let transactions proceed in
// parallel; only the stack mutex serializes.
package wordcount

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"corundum/internal/core"
	"corundum/internal/pmem"
)

// Tag is the pool tag the wordcount workload runs in.
type Tag struct{}

// Node is one stack cell holding a text segment.
type Node struct {
	Text core.PString[Tag]
	Next core.PBox[Node, Tag]
}

// DropContents frees the segment text when the node is freed. The next
// pointer is not dropped: popping relinks it before freeing the node.
func (n *Node) DropContents(j *core.Journal[Tag]) error {
	return n.Text.Free(j)
}

// Root is the pool root: a mutex-protected stack head.
type Root struct {
	Head core.PMutex[core.PBox[Node, Tag], Tag]
}

// Stack is a persistent, thread-safe LIFO of text segments.
type Stack struct {
	root core.Root[Root, Tag]
}

// Open creates the wordcount pool (in memory) and returns the stack.
func Open(cfg core.Config) (*Stack, error) {
	root, err := core.Open[Root, Tag]("", cfg)
	if err != nil {
		return nil, err
	}
	return &Stack{root: root}, nil
}

// Close releases the pool binding.
func (s *Stack) Close() error { return core.ClosePool[Tag]() }

// Push adds a segment failure-atomically.
func (s *Stack) Push(text string) error {
	return core.Transaction[Tag](func(j *core.Journal[Tag]) error {
		ps, err := core.NewPString[Tag](j, text)
		if err != nil {
			return err
		}
		head, err := s.root.Deref().Head.Lock(j)
		if err != nil {
			return err
		}
		node, err := core.NewPBox[Node, Tag](j, Node{Text: ps, Next: *head})
		if err != nil {
			return err
		}
		*head = node
		return nil
	})
}

// popResult carries Pop's outcome out of its transaction (TxOutSafe: a
// volatile copy of the text, never the persistent pointers).
type popResult struct {
	text string
	ok   bool
}

// Pop removes a segment, returning ok=false when the stack is empty. The
// popped node and its text are reclaimed at commit; the text rides out of
// the transaction as a volatile copy via TransactionV.
func (s *Stack) Pop() (string, bool, error) {
	res, err := core.TransactionV[popResult, Tag](func(j *core.Journal[Tag]) (popResult, error) {
		head, err := s.root.Deref().Head.Lock(j)
		if err != nil {
			return popResult{}, err
		}
		if head.IsNull() {
			return popResult{}, nil
		}
		node := *head
		n := node.DerefJ(j)
		text := n.Text.StringJ(j)
		*head = n.Next
		return popResult{text: text, ok: true}, node.Free(j)
	})
	return res.text, res.ok, err
}

// CountWords tallies word occurrences in a segment — the consumer-side
// CPU work whose parallelism Figure 2 measures.
func CountWords(text string, into map[string]int) {
	start := -1
	for i := 0; i < len(text); i++ {
		c := text[i]
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if alpha {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			into[strings.ToLower(text[start:i])]++
			start = -1
		}
	}
	if start >= 0 {
		into[strings.ToLower(text[start:])]++
	}
}

// GenerateCorpus synthesizes a deterministic text corpus standing in for
// the Large Canterbury Corpus the paper uses (the artifact downloads it;
// this repository must be self-contained). Zipf-ish word frequencies make
// the counting work realistic.
func GenerateCorpus(segments, segBytes int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 2000)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%d", i)
	}
	out := make([]string, segments)
	var sb strings.Builder
	for s := range out {
		sb.Reset()
		for sb.Len() < segBytes {
			// Squared sampling skews toward low indexes (frequent words).
			i := rng.Intn(len(vocab))
			j := rng.Intn(len(vocab))
			if j < i {
				i = j
			}
			sb.WriteString(vocab[i])
			sb.WriteByte(' ')
		}
		out[s] = sb.String()
	}
	return out
}

// Run executes the workload: producers push every corpus segment,
// consumers pop and count until the corpus is exhausted. It returns the
// total number of words counted across consumers.
func Run(s *Stack, producers, consumers int, corpus []string) (int, error) {
	var (
		wgProd sync.WaitGroup
		wgCons sync.WaitGroup
		mu     sync.Mutex
		firstE error
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}

	// Producers share the corpus round-robin.
	wgProd.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wgProd.Done()
			for i := p; i < len(corpus); i += producers {
				if err := s.Push(corpus[i]); err != nil {
					fail(err)
					return
				}
			}
		}(p)
	}

	produced := make(chan struct{})
	go func() {
		wgProd.Wait()
		close(produced)
	}()

	totals := make([]int, consumers)
	wgCons.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func(c int) {
			defer wgCons.Done()
			local := make(map[string]int, 4096)
			defer func() {
				for _, n := range local {
					totals[c] += n
				}
			}()
			for {
				text, ok, err := s.Pop()
				if err != nil {
					fail(err)
					return
				}
				if ok {
					CountWords(text, local)
					continue
				}
				select {
				case <-produced:
					// Producers are done; one more pop races any straggler.
					text, ok, err := s.Pop()
					if err != nil {
						fail(err)
						return
					}
					if !ok {
						return
					}
					CountWords(text, local)
				default:
					runtime.Gosched() // stack momentarily empty; retry
				}
			}
		}(c)
	}
	wgCons.Wait()
	if firstE != nil {
		return 0, firstE
	}
	total := 0
	for _, n := range totals {
		total += n
	}
	return total, nil
}

// DefaultConfig sizes the pool for a standard run.
func DefaultConfig(journals int) core.Config {
	return core.Config{Size: 256 << 20, Journals: journals, JournalCap: 256 << 10, Mem: pmem.Options{}}
}
