package wordcount

import (
	"strings"
	"testing"

	"corundum/internal/core"
)

func TestCountWords(t *testing.T) {
	m := make(map[string]int)
	CountWords("Hello, hello world!  a_b a_b a_b", m)
	if m["hello"] != 2 || m["world"] != 1 || m["a_b"] != 3 {
		t.Fatalf("counts: %v", m)
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(3, 1024, 42)
	b := GenerateCorpus(3, 1024, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus not deterministic")
		}
		if len(a[i]) < 1024 {
			t.Fatalf("segment %d only %d bytes", i, len(a[i]))
		}
	}
	c := GenerateCorpus(1, 1024, 43)
	if c[0] == a[0] {
		t.Fatal("different seeds produced identical corpus")
	}
}

func TestStackPushPop(t *testing.T) {
	s, err := Open(core.Config{Size: 16 << 20, Journals: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, text := range []string{"one", "two", "three"} {
		if err := s.Push(text); err != nil {
			t.Fatal(err)
		}
	}
	// LIFO order.
	for _, want := range []string{"three", "two", "one"} {
		got, ok, err := s.Pop()
		if err != nil || !ok || got != want {
			t.Fatalf("pop = %q,%v,%v want %q", got, ok, err, want)
		}
	}
	if _, ok, _ := s.Pop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
	// Everything was reclaimed.
	st, _ := core.StatsOf[Tag]()
	rootBlock := uint64(64)
	if st.InUse != rootBlock {
		t.Fatalf("stack leaked: %d bytes in use", st.InUse)
	}
}

func TestRunCountsEveryWord(t *testing.T) {
	s, err := Open(core.Config{Size: 64 << 20, Journals: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	corpus := GenerateCorpus(40, 2048, 1)
	want := 0
	for _, seg := range corpus {
		want += len(strings.Fields(seg))
	}
	got, err := Run(s, 2, 3, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("counted %d words, corpus has %d", got, want)
	}
	// All segments consumed and freed.
	st, _ := core.StatsOf[Tag]()
	if st.InUse != 64 {
		t.Fatalf("run leaked %d bytes", st.InUse-64)
	}
}

func TestRunSequentialMatchesParallel(t *testing.T) {
	s, err := Open(core.Config{Size: 64 << 20, Journals: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	corpus := GenerateCorpus(20, 2048, 2)
	seq, err := Run(s, 1, 1, corpus)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(s, 1, 4, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("sequential counted %d, parallel %d", seq, par)
	}
}
