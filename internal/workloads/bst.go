// Package workloads implements the paper's evaluation data structures —
// BST, KVStore (hash map), and an 8-way B+Tree — against the engine
// interface, so one implementation of each algorithm runs unmodified on
// Corundum and on every baseline library model, as the paper's Figure 1
// requires ("we reimplemented them in Corundum and the other libraries
// using the same algorithms").
package workloads

import (
	"corundum/internal/baselines/engine"
)

// BST node layout: [key][val][left][right], 32 bytes.
const (
	bstKey   = 0
	bstVal   = 8
	bstLeft  = 16
	bstRight = 24
	bstSize  = 32
)

// BST is a persistent binary search tree over one engine pool. The root
// object is a single word holding the offset of the tree's root node.
type BST struct {
	pool engine.Pool
	head uint64 // offset of the root pointer cell
}

// NewBST initializes a BST in the pool.
func NewBST(p engine.Pool) (*BST, error) {
	b := &BST{pool: p}
	err := p.Tx(func(tx engine.Tx) error {
		cell, err := tx.Alloc(8)
		if err != nil {
			return err
		}
		if err := tx.Store(cell, 0); err != nil {
			return err
		}
		b.head = cell
		return tx.SetRoot(cell)
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// AttachBST reconnects to a BST previously created in the pool.
func AttachBST(p engine.Pool) *BST {
	return &BST{pool: p, head: p.Root()}
}

// Insert adds (or updates) key failure-atomically.
func (b *BST) Insert(key, val uint64) error {
	return b.pool.Tx(func(tx engine.Tx) error {
		slot := b.head // the pointer word we may rewrite
		for {
			node := tx.Load(slot)
			if node == 0 {
				n, err := tx.Alloc(bstSize)
				if err != nil {
					return err
				}
				if err := tx.Store(n+bstKey, key); err != nil {
					return err
				}
				if err := tx.Store(n+bstVal, val); err != nil {
					return err
				}
				if err := tx.Store(n+bstLeft, 0); err != nil {
					return err
				}
				if err := tx.Store(n+bstRight, 0); err != nil {
					return err
				}
				return tx.Store(slot, n)
			}
			k := tx.Load(node + bstKey)
			switch {
			case key == k:
				return tx.Store(node+bstVal, val)
			case key < k:
				slot = node + bstLeft
			default:
				slot = node + bstRight
			}
		}
	})
}

// Lookup finds key; it runs inside a transaction so every library pays its
// own read path (the paper's CHK operation).
func (b *BST) Lookup(key uint64) (val uint64, found bool, err error) {
	err = b.pool.Tx(func(tx engine.Tx) error {
		node := tx.Load(b.head)
		for node != 0 {
			k := tx.Load(node + bstKey)
			switch {
			case key == k:
				val = tx.Load(node + bstVal)
				found = true
				return nil
			case key < k:
				node = tx.Load(node + bstLeft)
			default:
				node = tx.Load(node + bstRight)
			}
		}
		return nil
	})
	return val, found, err
}

// Remove deletes key, reclaiming its node. It returns whether the key was
// present.
func (b *BST) Remove(key uint64) (removed bool, err error) {
	err = b.pool.Tx(func(tx engine.Tx) error {
		slot := b.head
		node := tx.Load(slot)
		for node != 0 {
			k := tx.Load(node + bstKey)
			if key == k {
				break
			}
			if key < k {
				slot = node + bstLeft
			} else {
				slot = node + bstRight
			}
			node = tx.Load(slot)
		}
		if node == 0 {
			return nil
		}
		left := tx.Load(node + bstLeft)
		right := tx.Load(node + bstRight)
		switch {
		case left == 0:
			if err := tx.Store(slot, right); err != nil {
				return err
			}
		case right == 0:
			if err := tx.Store(slot, left); err != nil {
				return err
			}
		default:
			// Two children: splice the in-order successor into place.
			succSlot := node + bstRight
			succ := right
			for l := tx.Load(succ + bstLeft); l != 0; l = tx.Load(succ + bstLeft) {
				succSlot = succ + bstLeft
				succ = l
			}
			if err := tx.Store(node+bstKey, tx.Load(succ+bstKey)); err != nil {
				return err
			}
			if err := tx.Store(node+bstVal, tx.Load(succ+bstVal)); err != nil {
				return err
			}
			if err := tx.Store(succSlot, tx.Load(succ+bstRight)); err != nil {
				return err
			}
			node = succ // free the spliced-out node instead
		}
		removed = true
		return tx.Free(node, bstSize)
	})
	return removed, err
}

// Size counts nodes (test helper; walks inside one transaction).
func (b *BST) Size() (int, error) {
	n := 0
	err := b.pool.Tx(func(tx engine.Tx) error {
		var walk func(node uint64)
		walk = func(node uint64) {
			if node == 0 {
				return
			}
			n++
			walk(tx.Load(node + bstLeft))
			walk(tx.Load(node + bstRight))
		}
		walk(tx.Load(b.head))
		return nil
	})
	return n, err
}
