package workloads

import (
	"fmt"
	"sync/atomic"
)

// MovedError reports that a key's owner is (or is becoming) another
// shard: the caller should retry against Shard. Servers surface it as a
// "-MOVED <shard>" reply; it is retryable, never a data error.
type MovedError struct{ Shard int }

func (e MovedError) Error() string { return fmt.Sprintf("moved to shard %d", e.Shard) }

// Coordinator is what the Resharder needs from the serving layer to move
// keys out from under live traffic: per-shard reader/writer exclusion
// (the same locks the server's group-commit batchers take around every
// Apply) and a write barrier that flushes every mutation enqueued before
// the barrier into the store. Tests that migrate quiesced stores use
// NopCoordinator.
type Coordinator interface {
	// RLock/RUnlock guard verified reads of shard's store.
	RLock(shard int)
	RUnlock(shard int)
	// Lock/Unlock guard mutations of shard's store.
	Lock(shard int)
	Unlock(shard int)
	// Barrier returns once every mutation submitted to shard before the
	// call is durably committed (group-commit queue drained up to here).
	Barrier(shard int) error
}

// NopCoordinator coordinates nothing: for single-threaded tests and the
// crash-exploration campaign, where no concurrent traffic exists.
type NopCoordinator struct{}

func (NopCoordinator) RLock(int)         {}
func (NopCoordinator) RUnlock(int)       {}
func (NopCoordinator) Lock(int)          {}
func (NopCoordinator) Unlock(int)        {}
func (NopCoordinator) Barrier(int) error { return nil }

// fenceWindow is the published in-flight batch window: writes landing on
// shard Src in bucket range [Lo, Hi) whose new-layout home is elsewhere
// are refused with MovedError while the batch moves.
type fenceWindow struct {
	Src    int
	Lo, Hi uint64
}

// Resharder is the crash-safe online migration engine: it moves every
// key whose splitmix64 home differs between an oldN-shard and a
// newN-shard layout, in small crash-atomic batches, while the shards
// keep serving. All persistent state lives in the per-shard manifests
// (see manifest.go); the Resharder itself is reconstructible from them
// at any moment, which is exactly what a post-power-cut boot does.
type Resharder struct {
	stores []*KVStore // index = shard id; nil = shard down
	oldN   int
	newN   int
	epoch  uint64 // the config epoch this migration commits
	batchW uint64 // bucket-window width per batch
	coord  Coordinator

	// cursors[s] mirrors the durable manifest cursor of source shard s:
	// keys hashing below it have moved to their new home. Advanced only
	// inside the source's write lock, so ownership answers are stable
	// under a read lock.
	cursors []atomic.Uint64
	fence   atomic.Pointer[fenceWindow]

	movedKeys atomic.Uint64
	batches   atomic.Uint64
}

// NewResharder builds the engine over stores (indexed by shard id, at
// least max(oldN, newN) long, nil entries for down shards). epoch is the
// config epoch the migration will commit — callers pass current+1 for a
// fresh move, or the manifest's epoch when attaching. batchBuckets is
// the bucket-window width per crash-atomic batch (min 1).
func NewResharder(stores []*KVStore, oldN, newN int, epoch uint64, batchBuckets int, coord Coordinator) (*Resharder, error) {
	if oldN < 1 || newN < 1 {
		return nil, fmt.Errorf("reshard: shard counts must be positive (old %d, new %d)", oldN, newN)
	}
	if len(stores) < max(oldN, newN) {
		return nil, fmt.Errorf("reshard: %d stores for max(%d, %d) shards", len(stores), oldN, newN)
	}
	if batchBuckets < 1 {
		batchBuckets = 1
	}
	if coord == nil {
		coord = NopCoordinator{}
	}
	return &Resharder{
		stores:  stores,
		oldN:    oldN,
		newN:    newN,
		epoch:   epoch,
		batchW:  uint64(batchBuckets),
		coord:   coord,
		cursors: make([]atomic.Uint64, len(stores)),
	}, nil
}

// Epoch reports the config epoch this migration commits.
func (rs *Resharder) Epoch() uint64 { return rs.epoch }

// Shape reports the before/after shard counts.
func (rs *Resharder) Shape() (oldN, newN int) { return rs.oldN, rs.newN }

// Init durably publishes the migration: every source shard gets a
// cursor-0 manifest, shard 0 first so that any later boot discovers the
// move from pool 0 alone. Crashing mid-Init is safe in both directions:
// no manifest on shard 0 means the migration never started (RESHARD was
// not acknowledged), and missing manifests on later sources are
// re-created by Attach at cursor 0.
func (rs *Resharder) Init() error {
	for s := 0; s < rs.oldN; s++ {
		if rs.stores[s] == nil {
			return fmt.Errorf("reshard: source shard %d is down", s)
		}
		m := &Manifest{Kind: ManifestReshard, Epoch: rs.epoch, OldN: uint64(rs.oldN), NewN: uint64(rs.newN)}
		rs.coord.Lock(s)
		err := rs.stores[s].WriteManifest(m)
		rs.coord.Unlock(s)
		if err != nil {
			return fmt.Errorf("reshard: publishing manifest on shard %d: %w", s, err)
		}
	}
	return nil
}

// Attach reloads cursors from the durable manifests (resume after a
// restart or power cut). Sources whose manifest is missing — a cut
// during Init — restart at cursor 0 and get their manifest re-created.
// A down source leaves its cursor at 0: ownership answers for its keys
// then route to the down shard, whose serving layer refuses loudly,
// which is the correct "cannot know" answer.
func (rs *Resharder) Attach() error {
	for s := 0; s < rs.oldN; s++ {
		if rs.stores[s] == nil {
			continue
		}
		m, err := rs.stores[s].ReadManifest()
		if err != nil {
			return fmt.Errorf("reshard: reading manifest on shard %d: %w", s, err)
		}
		if m == nil || m.Epoch != rs.epoch || m.Kind != ManifestReshard {
			m = &Manifest{Kind: ManifestReshard, Epoch: rs.epoch, OldN: uint64(rs.oldN), NewN: uint64(rs.newN)}
			rs.coord.Lock(s)
			err := rs.stores[s].WriteManifest(m)
			rs.coord.Unlock(s)
			if err != nil {
				return fmt.Errorf("reshard: re-publishing manifest on shard %d: %w", s, err)
			}
		}
		if m.OldN != uint64(rs.oldN) || m.NewN != uint64(rs.newN) {
			return fmt.Errorf("reshard: shard %d manifest shape %d->%d, expected %d->%d",
				s, m.OldN, m.NewN, rs.oldN, rs.newN)
		}
		rs.cursors[s].Store(m.Cursor)
	}
	return nil
}

// Owner answers which shard serves key right now. Keys whose old- and
// new-layout homes agree never move. For moving keys the source shard's
// cursor decides: buckets below it have been handed over, buckets at or
// above it still answer at the source. Cursors only advance inside the
// source's write lock, so an Owner answer taken under a shard's read
// lock cannot be invalidated while that lock is held.
func (rs *Resharder) Owner(key uint64) int {
	src := ShardFor(key, rs.oldN)
	dst := ShardFor(key, rs.newN)
	if src == dst {
		return src
	}
	st := rs.stores[src]
	if st != nil && st.Bucket(key) < rs.cursors[src].Load() {
		return dst
	}
	return src
}

// CheckWrite vets a mutation of key arriving at shard: it refuses (with
// MovedError) keys owned elsewhere and keys inside the published fence
// window — the batch currently mid-move — so no write can land at the
// source between the batch scan and the source-side delete.
func (rs *Resharder) CheckWrite(shard int, key uint64) error {
	if f := rs.fence.Load(); f != nil && f.Src == shard {
		st := rs.stores[shard]
		if st != nil {
			if b := st.Bucket(key); b >= f.Lo && b < f.Hi {
				if dst := ShardFor(key, rs.newN); dst != shard {
					return MovedError{Shard: dst}
				}
			}
		}
	}
	if o := rs.Owner(key); o != shard {
		return MovedError{Shard: o}
	}
	return nil
}

// Done reports whether every source shard's cursor has passed its last
// bucket — all keys are at their new homes, only the config commit
// (Finish) remains.
func (rs *Resharder) Done() bool {
	for s := 0; s < rs.oldN; s++ {
		st := rs.stores[s]
		if st == nil {
			return false
		}
		if rs.cursors[s].Load() < st.Buckets() {
			return false
		}
	}
	return true
}

// Progress reports moved-key and batch counters plus per-source cursor
// fractions, for INFO/STATS and metrics.
func (rs *Resharder) Progress() (movedKeys, batches uint64, fraction float64) {
	var done, total uint64
	for s := 0; s < rs.oldN; s++ {
		if st := rs.stores[s]; st != nil {
			c := rs.cursors[s].Load()
			if c > st.Buckets() {
				c = st.Buckets()
			}
			done += c
			total += st.Buckets()
		}
	}
	if total > 0 {
		fraction = float64(done) / float64(total)
	}
	return rs.movedKeys.Load(), rs.batches.Load(), fraction
}

// Step migrates one crash-atomic batch from source shard s and reports
// whether s is fully migrated. The protocol per batch:
//
//  1. Publish the fence window [cursor, cursor+W) and barrier the
//     source: every mutation enqueued before the fence is committed and
//     visible to the scan; every one after is refused with -MOVED.
//  2. Scan the window under the read lock, collecting keys whose
//     new-layout home differs, with their current values.
//  3. Durably record those keys — merged with any keys recorded by a
//     previous (crashed) attempt at this window — in the source
//     manifest, under the write lock, BEFORE any target is touched:
//     whatever happens next, recovery knows exactly which keys might
//     exist at targets and must be reconciled.
//  4. Insert the moved keys at their target shards (one transaction per
//     target, under that target's write lock). Recorded keys no longer
//     present at the source become target deletes — they may have been
//     copied by the crashed attempt and deleted at the source since.
//     Both directions are idempotent, so replaying after a cut is safe.
//  5. In ONE transaction on the source: delete the moved keys and
//     advance the manifest cursor past the window (batch record
//     cleared). The in-memory cursor advances inside the same write
//     lock, so ownership flips atomically with the handover.
//
// A power cut anywhere leaves a state this same function rolls forward:
// before 3 the batch never happened; between 3 and 5 the recorded batch
// is re-reconciled; after 5 the cursor has moved on.
func (rs *Resharder) Step(s int) (done bool, err error) {
	st := rs.stores[s]
	if st == nil {
		return false, fmt.Errorf("reshard: source shard %d is down", s)
	}
	m, err := st.ReadManifest()
	if err != nil {
		return false, err
	}
	if m == nil || m.Kind != ManifestReshard || m.Epoch != rs.epoch {
		return false, fmt.Errorf("reshard: shard %d has no active manifest for epoch %d", s, rs.epoch)
	}
	nb := st.Buckets()
	if m.Cursor >= nb {
		rs.cursors[s].Store(nb)
		return true, nil
	}
	w := rs.batchW
	if m.BatchBuckets > 0 {
		// A previous attempt recorded this window; keep its width so the
		// recorded keys and the re-scan cover the same buckets.
		w = m.BatchBuckets
	}
	lo, hi := m.Cursor, m.Cursor+w
	if hi > nb {
		hi = nb
	}

	rs.fence.Store(&fenceWindow{Src: s, Lo: lo, Hi: hi})
	defer rs.fence.Store(nil)
	if err := rs.coord.Barrier(s); err != nil {
		return false, err
	}

	type kvPair struct{ k, v uint64 }
	var moving []kvPair
	rs.coord.RLock(s)
	scanErr := st.ScanRange(lo, hi, func(k, v uint64) bool {
		if ShardFor(k, rs.newN) != s {
			moving = append(moving, kvPair{k, v})
		}
		return true
	})
	rs.coord.RUnlock(s)
	if scanErr != nil {
		return false, scanErr
	}

	// Merge with keys recorded by a crashed attempt at this same window:
	// recorded keys that vanished from the source since must be deleted
	// at their targets (the crashed attempt may have copied them).
	present := make(map[uint64]bool, len(moving))
	record := make([]uint64, 0, len(moving)+len(m.Batch))
	for _, p := range moving {
		present[p.k] = true
		record = append(record, p.k)
	}
	var stale []uint64
	for _, k := range m.Batch {
		if !present[k] {
			stale = append(stale, k)
			record = append(record, k)
		}
	}

	if len(record) > 0 {
		rec := &Manifest{
			Kind: ManifestReshard, Epoch: rs.epoch,
			OldN: uint64(rs.oldN), NewN: uint64(rs.newN),
			Cursor: m.Cursor, BatchBuckets: hi - lo, Batch: record,
		}
		rs.coord.Lock(s)
		err := st.WriteManifest(rec)
		rs.coord.Unlock(s)
		if err != nil {
			return false, err
		}

		// Group the target-side work per destination shard; one
		// failure-atomic transaction each.
		targets := make(map[int][]Op)
		for _, p := range moving {
			dst := ShardFor(p.k, rs.newN)
			targets[dst] = append(targets[dst], Op{Key: p.k, Val: p.v})
		}
		for _, k := range stale {
			dst := ShardFor(k, rs.newN)
			targets[dst] = append(targets[dst], Op{Del: true, Key: k})
		}
		for dst, ops := range targets {
			tst := rs.stores[dst]
			if tst == nil {
				return false, fmt.Errorf("reshard: target shard %d is down", dst)
			}
			rs.coord.Lock(dst)
			_, err := tst.Apply(ops)
			rs.coord.Unlock(dst)
			if err != nil {
				return false, fmt.Errorf("reshard: applying batch at shard %d: %w", dst, err)
			}
		}
	}

	// Hand the window over: delete moved keys at the source and advance
	// the durable cursor in one transaction, flipping the in-memory
	// cursor inside the same critical section.
	adv := &Manifest{
		Kind: ManifestReshard, Epoch: rs.epoch,
		OldN: uint64(rs.oldN), NewN: uint64(rs.newN), Cursor: hi,
	}
	dels := make([]Op, 0, len(moving))
	for _, p := range moving {
		dels = append(dels, Op{Del: true, Key: p.k})
	}
	rs.coord.Lock(s)
	_, err = st.ApplyWithManifest(dels, adv)
	if err == nil {
		rs.cursors[s].Store(hi)
	}
	rs.coord.Unlock(s)
	if err != nil {
		return false, err
	}
	rs.movedKeys.Add(uint64(len(moving)))
	rs.batches.Add(1)
	return hi >= nb, nil
}

// Finish commits the migration. The config write on shard 0 is THE
// commit point: it makes every manifest of this epoch stale, so clearing
// them afterwards (and mirroring the new config onto the other surviving
// shards) is mere cleanup — a cut anywhere in Finish re-runs it.
// Callers must only Finish once Done() reports true.
func (rs *Resharder) Finish() error {
	if !rs.Done() {
		return fmt.Errorf("reshard: Finish before all sources are migrated")
	}
	if rs.stores[0] == nil {
		return fmt.Errorf("reshard: shard 0 is down, cannot commit config")
	}
	rs.coord.Lock(0)
	err := rs.stores[0].WriteConfig(rs.newN, rs.epoch)
	rs.coord.Unlock(0)
	if err != nil {
		return fmt.Errorf("reshard: committing config: %w", err)
	}
	for s := 1; s < rs.newN && s < len(rs.stores); s++ {
		if rs.stores[s] == nil {
			continue
		}
		rs.coord.Lock(s)
		err := rs.stores[s].WriteConfig(rs.newN, rs.epoch)
		rs.coord.Unlock(s)
		if err != nil {
			return fmt.Errorf("reshard: mirroring config to shard %d: %w", s, err)
		}
	}
	for s := 0; s < max(rs.oldN, rs.newN); s++ {
		if rs.stores[s] == nil {
			continue
		}
		rs.coord.Lock(s)
		err := rs.stores[s].ClearManifest()
		rs.coord.Unlock(s)
		if err != nil {
			return fmt.Errorf("reshard: clearing manifest on shard %d: %w", s, err)
		}
	}
	return nil
}

// Run drives the migration to completion: batch by batch across every
// source shard, stopping early (cleanly, at a batch boundary, cursor
// durable) when stop closes. It reports whether the migration completed
// — including the Finish commit — so a false return means "resumable
// state left behind", which is exactly what SIGTERM-during-migration
// wants. throttle, when non-nil, runs between batches to bound the
// migration's impact on serving traffic.
func (rs *Resharder) Run(stop <-chan struct{}, throttle func()) (completed bool, err error) {
	for s := 0; s < rs.oldN; s++ {
		for {
			select {
			case <-stop:
				return false, nil
			default:
			}
			done, err := rs.Step(s)
			if err != nil {
				return false, err
			}
			if done {
				break
			}
			if throttle != nil {
				throttle()
			}
		}
	}
	if err := rs.Finish(); err != nil {
		return false, err
	}
	return true, nil
}
