package workloads

import "fmt"

// Sharded key-value layer: the paper's multi-pool scalability argument
// (Fig. 10–11 runs independent pools in parallel) applied to the KV
// store. A ShardedKV partitions the keyspace by hash across N KVStores,
// each living in its own pool with its own journals and arenas, so
// transactions on different shards share no persistent state and commit
// in parallel. Atomicity is per shard: a batched run that spans shards
// is N independent failure-atomic transactions, which preserves the
// per-key linearizability contract (no operation spans shards).

// ShardFor routes a key to one of n shards. The mixer (splitmix64
// finalizer) is deliberately different from the store's in-shard bucket
// hash so shard choice and bucket choice stay independent — otherwise
// every shard would populate the same bucket residues.
func ShardFor(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// ShardedKV aggregates N per-pool KVStores behind hash routing.
// It adds no synchronization: callers that serve shards concurrently
// (the server) lock per shard around the Store they route to.
type ShardedKV struct {
	stores []*KVStore
}

// NewShardedKV builds the routing layer over already-open stores, one
// per shard, in shard order.
func NewShardedKV(stores []*KVStore) *ShardedKV {
	if len(stores) == 0 {
		panic("workloads: ShardedKV needs at least one store")
	}
	return &ShardedKV{stores: stores}
}

// Shards reports the shard count.
func (s *ShardedKV) Shards() int { return len(s.stores) }

// Store returns shard i's KVStore.
func (s *ShardedKV) Store(i int) *KVStore { return s.stores[i] }

// ShardFor routes a key to its shard.
func (s *ShardedKV) ShardFor(key uint64) int { return ShardFor(key, len(s.stores)) }

// Get routes a lookup to the owning shard.
func (s *ShardedKV) Get(key uint64) (uint64, bool, error) {
	return s.stores[s.ShardFor(key)].Get(key)
}

// Put routes an upsert to the owning shard.
func (s *ShardedKV) Put(key, val uint64) error {
	return s.stores[s.ShardFor(key)].Put(key, val)
}

// Delete routes a removal to the owning shard.
func (s *ShardedKV) Delete(key uint64) (bool, error) {
	return s.stores[s.ShardFor(key)].Delete(key)
}

// Scan walks every shard in order, calling fn until it returns false.
// Within a shard the order is the store's bucket order; across shards it
// is shard order — like the single-store Scan, no key order is promised.
func (s *ShardedKV) Scan(fn func(k, v uint64) bool) error {
	stop := false
	for i, kv := range s.stores {
		err := kv.Scan(func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if stop {
			return nil
		}
	}
	return nil
}

// VerifyIntegrity runs every shard's verified walk, naming the shard a
// failure came from.
func (s *ShardedKV) VerifyIntegrity() error {
	for i, kv := range s.stores {
		if err := kv.VerifyIntegrity(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// PartitionOps splits a batched run across n shards, preserving each
// shard's relative order, and returns alongside each shard's ops the
// original indexes so replies can be reassembled in submission order.
func PartitionOps(ops []Op, n int) (byShard [][]Op, idx [][]int) {
	byShard = make([][]Op, n)
	idx = make([][]int, n)
	for i, op := range ops {
		s := ShardFor(op.Key, n)
		byShard[s] = append(byShard[s], op)
		idx[s] = append(idx[s], i)
	}
	return byShard, idx
}
