package workloads

import (
	"math/rand"
	"testing"
)

// TestKVStoreApplyAgainstModelOnAllLibs drives the group-commit entry
// point with random mixed batches and cross-checks the per-op results,
// point lookups, Scan, and Len against a volatile model.
func TestKVStoreApplyAgainstModelOnAllLibs(t *testing.T) {
	for _, lib := range libs() {
		t.Run(lib.Name(), func(t *testing.T) {
			p, err := lib.Open(testCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			kv, err := NewKVStore(p, 64)
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(23))
			for round := 0; round < 150; round++ {
				ops := make([]Op, 1+rng.Intn(16))
				for i := range ops {
					key := uint64(rng.Intn(200))
					if rng.Intn(4) == 0 {
						ops[i] = Op{Del: true, Key: key}
					} else {
						ops[i] = Op{Key: key, Val: rng.Uint64()}
					}
				}
				res, err := kv.Apply(ops)
				if err != nil {
					t.Fatal(err)
				}
				for i, op := range ops {
					if op.Del {
						_, inModel := model[op.Key]
						if res[i] != inModel {
							t.Fatalf("round %d op %d: delete(%d)=%v, model %v", round, i, op.Key, res[i], inModel)
						}
						delete(model, op.Key)
					} else {
						if !res[i] {
							t.Fatalf("round %d op %d: put reported false", round, i)
						}
						model[op.Key] = op.Val
					}
				}
			}
			for key, want := range model {
				got, found, err := kv.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				if !found || got != want {
					t.Fatalf("get(%d) = %d,%v want %d", key, got, found, want)
				}
			}
			scanned := make(map[uint64]uint64)
			if err := kv.Scan(func(k, v uint64) bool {
				if _, dup := scanned[k]; dup {
					t.Fatalf("scan visited key %d twice", k)
				}
				scanned[k] = v
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(scanned) != len(model) {
				t.Fatalf("scan saw %d keys, model has %d", len(scanned), len(model))
			}
			for k, v := range model {
				if scanned[k] != v {
					t.Fatalf("scan value for %d: %d want %d", k, scanned[k], v)
				}
			}
			n, err := kv.Len()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(model) {
				t.Fatalf("len %d, model %d", n, len(model))
			}
		})
	}
}

// TestKVStoreApplyEmptyAndScanEarlyStop covers the degenerate batch and
// the Scan early-termination contract.
func TestKVStoreApplyEmptyAndScanEarlyStop(t *testing.T) {
	lib := libs()[0]
	p, err := lib.Open(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	kv, err := NewKVStore(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := kv.Apply(nil); err != nil || len(res) != 0 {
		t.Fatalf("Apply(nil) = %v, %v", res, err)
	}
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Key: uint64(i), Val: uint64(i) * 3}
	}
	if _, err := kv.Apply(ops); err != nil {
		t.Fatal(err)
	}
	visited := 0
	if err := kv.Scan(func(k, v uint64) bool {
		visited++
		return visited < 4
	}); err != nil {
		t.Fatal(err)
	}
	if visited != 4 {
		t.Fatalf("scan visited %d pairs after stopping at 4", visited)
	}
}
