package workloads

import (
	"fmt"

	"corundum/internal/baselines/engine"
)

// BTree is the paper's "optimized, balanced B+Tree with 8-way fanout":
// internal nodes hold up to 7 keys and 8 children; leaves hold up to 7
// key/value pairs and chain to the next leaf for ordered scans.
//
// Node layout (136 bytes, one 256-byte block):
//
//	+0   nkeys
//	+8   leaf flag
//	+16  keys[7]
//	+72  ptrs[8]   internal: children; leaf: values in ptrs[0..6], next leaf in ptrs[7]
const (
	btMaxKeys = 7
	btMinKeys = 3
	btNKeys   = 0
	btLeaf    = 8
	btKeys    = 16
	btPtrs    = 72
	btSize    = 136
)

// BTree is a persistent B+Tree over one engine pool.
type BTree struct {
	pool engine.Pool
	head uint64 // offset of the root pointer cell
}

func btKeyOff(node uint64, i int) uint64 { return node + btKeys + uint64(i)*8 }
func btPtrOff(node uint64, i int) uint64 { return node + btPtrs + uint64(i)*8 }

// NewBTree initializes an empty tree (a single empty leaf).
func NewBTree(p engine.Pool) (*BTree, error) {
	t := &BTree{pool: p}
	err := p.Tx(func(tx engine.Tx) error {
		leaf, err := newNode(tx, true)
		if err != nil {
			return err
		}
		cell, err := tx.Alloc(8)
		if err != nil {
			return err
		}
		if err := tx.Store(cell, leaf); err != nil {
			return err
		}
		t.head = cell
		return tx.SetRoot(cell)
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AttachBTree reconnects to a tree previously created in the pool.
func AttachBTree(p engine.Pool) *BTree {
	return &BTree{pool: p, head: p.Root()}
}

func newNode(tx engine.Tx, leaf bool) (uint64, error) {
	n, err := tx.Alloc(btSize)
	if err != nil {
		return 0, err
	}
	zero := make([]byte, btSize)
	if leaf {
		zero[btLeaf] = 1
	}
	if err := tx.StoreBytes(n, zero); err != nil {
		return 0, err
	}
	return n, nil
}

// Lookup finds key (the paper's CHK).
func (t *BTree) Lookup(key uint64) (val uint64, found bool, err error) {
	err = t.pool.Tx(func(tx engine.Tx) error {
		node := tx.Load(t.head)
		for {
			nk := int(tx.Load(node + btNKeys))
			if tx.Load(node+btLeaf) != 0 {
				for i := 0; i < nk; i++ {
					if tx.Load(btKeyOff(node, i)) == key {
						val = tx.Load(btPtrOff(node, i))
						found = true
						return nil
					}
				}
				return nil
			}
			i := 0
			for i < nk && key >= tx.Load(btKeyOff(node, i)) {
				i++
			}
			node = tx.Load(btPtrOff(node, i))
		}
	})
	return val, found, err
}

// Insert adds or updates key (the paper's INS). Full nodes split on the
// way down, so the recursion never needs to back up.
func (t *BTree) Insert(key, val uint64) error {
	return t.pool.Tx(func(tx engine.Tx) error {
		root := tx.Load(t.head)
		if tx.Load(root+btNKeys) == btMaxKeys {
			// Grow a new root and split the old one under it.
			nr, err := newNode(tx, false)
			if err != nil {
				return err
			}
			if err := tx.Store(btPtrOff(nr, 0), root); err != nil {
				return err
			}
			if err := t.splitChild(tx, nr, 0); err != nil {
				return err
			}
			if err := tx.Store(t.head, nr); err != nil {
				return err
			}
			root = nr
		}
		return t.insertNonFull(tx, root, key, val)
	})
}

func (t *BTree) insertNonFull(tx engine.Tx, node, key, val uint64) error {
	for {
		nk := int(tx.Load(node + btNKeys))
		if tx.Load(node+btLeaf) != 0 {
			// Update in place if present.
			for i := 0; i < nk; i++ {
				if tx.Load(btKeyOff(node, i)) == key {
					return tx.Store(btPtrOff(node, i), val)
				}
			}
			// Shift larger keys right and insert.
			i := nk
			for i > 0 && tx.Load(btKeyOff(node, i-1)) > key {
				if err := tx.Store(btKeyOff(node, i), tx.Load(btKeyOff(node, i-1))); err != nil {
					return err
				}
				if err := tx.Store(btPtrOff(node, i), tx.Load(btPtrOff(node, i-1))); err != nil {
					return err
				}
				i--
			}
			if err := tx.Store(btKeyOff(node, i), key); err != nil {
				return err
			}
			if err := tx.Store(btPtrOff(node, i), val); err != nil {
				return err
			}
			return tx.Store(node+btNKeys, uint64(nk+1))
		}
		i := 0
		for i < nk && key >= tx.Load(btKeyOff(node, i)) {
			i++
		}
		child := tx.Load(btPtrOff(node, i))
		if tx.Load(child+btNKeys) == btMaxKeys {
			if err := t.splitChild(tx, node, i); err != nil {
				return err
			}
			if key >= tx.Load(btKeyOff(node, i)) {
				i++
			}
			child = tx.Load(btPtrOff(node, i))
		}
		node = child
	}
}

// splitChild splits the full child at index i of parent (which has room).
func (t *BTree) splitChild(tx engine.Tx, parent uint64, i int) error {
	child := tx.Load(btPtrOff(parent, i))
	leaf := tx.Load(child+btLeaf) != 0
	right, err := newNode(tx, leaf)
	if err != nil {
		return err
	}
	mid := btMaxKeys / 2 // 3
	var upKey uint64
	if leaf {
		// Leaf split: the right half keeps btMaxKeys-mid entries; the first
		// right key is copied up.
		moved := btMaxKeys - mid
		for k := 0; k < moved; k++ {
			if err := tx.Store(btKeyOff(right, k), tx.Load(btKeyOff(child, mid+k))); err != nil {
				return err
			}
			if err := tx.Store(btPtrOff(right, k), tx.Load(btPtrOff(child, mid+k))); err != nil {
				return err
			}
		}
		if err := tx.Store(right+btNKeys, uint64(moved)); err != nil {
			return err
		}
		// Chain leaves: right takes child's next; child points to right.
		if err := tx.Store(btPtrOff(right, btMaxKeys), tx.Load(btPtrOff(child, btMaxKeys))); err != nil {
			return err
		}
		if err := tx.Store(btPtrOff(child, btMaxKeys), right); err != nil {
			return err
		}
		if err := tx.Store(child+btNKeys, uint64(mid)); err != nil {
			return err
		}
		upKey = tx.Load(btKeyOff(right, 0))
	} else {
		// Internal split: the middle key moves up.
		moved := btMaxKeys - mid - 1
		for k := 0; k < moved; k++ {
			if err := tx.Store(btKeyOff(right, k), tx.Load(btKeyOff(child, mid+1+k))); err != nil {
				return err
			}
		}
		for k := 0; k <= moved; k++ {
			if err := tx.Store(btPtrOff(right, k), tx.Load(btPtrOff(child, mid+1+k))); err != nil {
				return err
			}
		}
		if err := tx.Store(right+btNKeys, uint64(moved)); err != nil {
			return err
		}
		upKey = tx.Load(btKeyOff(child, mid))
		if err := tx.Store(child+btNKeys, uint64(mid)); err != nil {
			return err
		}
	}
	// Shift the parent's keys/pointers right of i and link the new child.
	nk := int(tx.Load(parent + btNKeys))
	for k := nk; k > i; k-- {
		if err := tx.Store(btKeyOff(parent, k), tx.Load(btKeyOff(parent, k-1))); err != nil {
			return err
		}
		if err := tx.Store(btPtrOff(parent, k+1), tx.Load(btPtrOff(parent, k))); err != nil {
			return err
		}
	}
	if err := tx.Store(btKeyOff(parent, i), upKey); err != nil {
		return err
	}
	if err := tx.Store(btPtrOff(parent, i+1), right); err != nil {
		return err
	}
	return tx.Store(parent+btNKeys, uint64(nk+1))
}

// Remove deletes key (the paper's REM), rebalancing by borrowing from or
// merging with siblings so every non-root node keeps at least btMinKeys
// keys.
func (t *BTree) Remove(key uint64) (removed bool, err error) {
	err = t.pool.Tx(func(tx engine.Tx) error {
		root := tx.Load(t.head)
		r, err := t.removeFrom(tx, root, key)
		if err != nil {
			return err
		}
		removed = r
		// Shrink the root when an internal root empties out.
		if tx.Load(root+btLeaf) == 0 && tx.Load(root+btNKeys) == 0 {
			newRoot := tx.Load(btPtrOff(root, 0))
			if err := tx.Store(t.head, newRoot); err != nil {
				return err
			}
			return tx.Free(root, btSize)
		}
		return nil
	})
	return removed, err
}

func (t *BTree) removeFrom(tx engine.Tx, node, key uint64) (bool, error) {
	nk := int(tx.Load(node + btNKeys))
	if tx.Load(node+btLeaf) != 0 {
		for i := 0; i < nk; i++ {
			if tx.Load(btKeyOff(node, i)) == key {
				for k := i; k < nk-1; k++ {
					if err := tx.Store(btKeyOff(node, k), tx.Load(btKeyOff(node, k+1))); err != nil {
						return false, err
					}
					if err := tx.Store(btPtrOff(node, k), tx.Load(btPtrOff(node, k+1))); err != nil {
						return false, err
					}
				}
				return true, tx.Store(node+btNKeys, uint64(nk-1))
			}
		}
		return false, nil
	}
	i := 0
	for i < nk && key >= tx.Load(btKeyOff(node, i)) {
		i++
	}
	child := tx.Load(btPtrOff(node, i))
	removed, err := t.removeFrom(tx, child, key)
	if err != nil {
		return false, err
	}
	if tx.Load(child+btNKeys) < btMinKeys {
		if err := t.rebalance(tx, node, i); err != nil {
			return false, err
		}
	}
	return removed, nil
}

// rebalance fixes the underfull child at index i of parent by borrowing
// from a sibling or merging with one.
func (t *BTree) rebalance(tx engine.Tx, parent uint64, i int) error {
	nk := int(tx.Load(parent + btNKeys))
	child := tx.Load(btPtrOff(parent, i))
	if i > 0 {
		left := tx.Load(btPtrOff(parent, i-1))
		if tx.Load(left+btNKeys) > btMinKeys {
			return t.borrowFromLeft(tx, parent, i, left, child)
		}
	}
	if i < nk {
		right := tx.Load(btPtrOff(parent, i+1))
		if tx.Load(right+btNKeys) > btMinKeys {
			return t.borrowFromRight(tx, parent, i, child, right)
		}
	}
	if i > 0 {
		return t.merge(tx, parent, i-1)
	}
	return t.merge(tx, parent, i)
}

func (t *BTree) borrowFromLeft(tx engine.Tx, parent uint64, i int, left, child uint64) error {
	ck := int(tx.Load(child + btNKeys))
	lk := int(tx.Load(left + btNKeys))
	leaf := tx.Load(child+btLeaf) != 0
	// Make room at the front of child.
	for k := ck; k > 0; k-- {
		if err := tx.Store(btKeyOff(child, k), tx.Load(btKeyOff(child, k-1))); err != nil {
			return err
		}
	}
	hi := ck
	if !leaf {
		hi = ck + 1
	}
	for k := hi; k > 0; k-- {
		if err := tx.Store(btPtrOff(child, k), tx.Load(btPtrOff(child, k-1))); err != nil {
			return err
		}
	}
	if leaf {
		if err := tx.Store(btKeyOff(child, 0), tx.Load(btKeyOff(left, lk-1))); err != nil {
			return err
		}
		if err := tx.Store(btPtrOff(child, 0), tx.Load(btPtrOff(left, lk-1))); err != nil {
			return err
		}
		if err := tx.Store(btKeyOff(parent, i-1), tx.Load(btKeyOff(child, 0))); err != nil {
			return err
		}
	} else {
		if err := tx.Store(btKeyOff(child, 0), tx.Load(btKeyOff(parent, i-1))); err != nil {
			return err
		}
		if err := tx.Store(btPtrOff(child, 0), tx.Load(btPtrOff(left, lk))); err != nil {
			return err
		}
		if err := tx.Store(btKeyOff(parent, i-1), tx.Load(btKeyOff(left, lk-1))); err != nil {
			return err
		}
	}
	if err := tx.Store(left+btNKeys, uint64(lk-1)); err != nil {
		return err
	}
	return tx.Store(child+btNKeys, uint64(ck+1))
}

func (t *BTree) borrowFromRight(tx engine.Tx, parent uint64, i int, child, right uint64) error {
	ck := int(tx.Load(child + btNKeys))
	rk := int(tx.Load(right + btNKeys))
	leaf := tx.Load(child+btLeaf) != 0
	rightFirstKey := tx.Load(btKeyOff(right, 0))
	rightFirstPtr := tx.Load(btPtrOff(right, 0))
	if leaf {
		if err := tx.Store(btKeyOff(child, ck), rightFirstKey); err != nil {
			return err
		}
		if err := tx.Store(btPtrOff(child, ck), rightFirstPtr); err != nil {
			return err
		}
	} else {
		if err := tx.Store(btKeyOff(child, ck), tx.Load(btKeyOff(parent, i))); err != nil {
			return err
		}
		if err := tx.Store(btPtrOff(child, ck+1), rightFirstPtr); err != nil {
			return err
		}
	}
	// Shift right's contents left.
	for k := 0; k < rk-1; k++ {
		if err := tx.Store(btKeyOff(right, k), tx.Load(btKeyOff(right, k+1))); err != nil {
			return err
		}
	}
	hi := rk - 1
	if !leaf {
		hi = rk
	}
	for k := 0; k < hi; k++ {
		if err := tx.Store(btPtrOff(right, k), tx.Load(btPtrOff(right, k+1))); err != nil {
			return err
		}
	}
	// The parent separator becomes right's old first key (internal) or
	// right's new first key (leaf, where separators mirror leaf heads).
	sep := rightFirstKey
	if leaf {
		sep = tx.Load(btKeyOff(right, 0))
	}
	if err := tx.Store(btKeyOff(parent, i), sep); err != nil {
		return err
	}
	if err := tx.Store(right+btNKeys, uint64(rk-1)); err != nil {
		return err
	}
	return tx.Store(child+btNKeys, uint64(ck+1))
}

// merge folds the child at index i+1 of parent into the child at index i
// and frees the right node.
func (t *BTree) merge(tx engine.Tx, parent uint64, i int) error {
	left := tx.Load(btPtrOff(parent, i))
	right := tx.Load(btPtrOff(parent, i+1))
	lk := int(tx.Load(left + btNKeys))
	rk := int(tx.Load(right + btNKeys))
	leaf := tx.Load(left+btLeaf) != 0

	if leaf {
		for k := 0; k < rk; k++ {
			if err := tx.Store(btKeyOff(left, lk+k), tx.Load(btKeyOff(right, k))); err != nil {
				return err
			}
			if err := tx.Store(btPtrOff(left, lk+k), tx.Load(btPtrOff(right, k))); err != nil {
				return err
			}
		}
		if err := tx.Store(left+btNKeys, uint64(lk+rk)); err != nil {
			return err
		}
		// Unchain the right leaf.
		if err := tx.Store(btPtrOff(left, btMaxKeys), tx.Load(btPtrOff(right, btMaxKeys))); err != nil {
			return err
		}
	} else {
		// The separator key comes down between the two halves.
		if err := tx.Store(btKeyOff(left, lk), tx.Load(btKeyOff(parent, i))); err != nil {
			return err
		}
		for k := 0; k < rk; k++ {
			if err := tx.Store(btKeyOff(left, lk+1+k), tx.Load(btKeyOff(right, k))); err != nil {
				return err
			}
		}
		for k := 0; k <= rk; k++ {
			if err := tx.Store(btPtrOff(left, lk+1+k), tx.Load(btPtrOff(right, k))); err != nil {
				return err
			}
		}
		if err := tx.Store(left+btNKeys, uint64(lk+1+rk)); err != nil {
			return err
		}
	}
	// Remove the separator and the right pointer from the parent.
	nk := int(tx.Load(parent + btNKeys))
	for k := i; k < nk-1; k++ {
		if err := tx.Store(btKeyOff(parent, k), tx.Load(btKeyOff(parent, k+1))); err != nil {
			return err
		}
	}
	for k := i + 1; k < nk; k++ {
		if err := tx.Store(btPtrOff(parent, k), tx.Load(btPtrOff(parent, k+1))); err != nil {
			return err
		}
	}
	if err := tx.Store(parent+btNKeys, uint64(nk-1)); err != nil {
		return err
	}
	return tx.Free(right, btSize)
}

// Scan walks the leaf chain in key order, calling f for each pair until f
// returns false. It validates the leaf chain as it goes.
func (t *BTree) Scan(f func(key, val uint64) bool) error {
	return t.pool.Tx(func(tx engine.Tx) error {
		node := tx.Load(t.head)
		for tx.Load(node+btLeaf) == 0 {
			node = tx.Load(btPtrOff(node, 0))
		}
		var prev uint64
		first := true
		for node != 0 {
			nk := int(tx.Load(node + btNKeys))
			for i := 0; i < nk; i++ {
				k := tx.Load(btKeyOff(node, i))
				if !first && k <= prev {
					return fmt.Errorf("btree: leaf chain out of order: %d after %d", k, prev)
				}
				prev, first = k, false
				if !f(k, tx.Load(btPtrOff(node, i))) {
					return nil
				}
			}
			node = tx.Load(btPtrOff(node, btMaxKeys))
		}
		return nil
	})
}

// CheckInvariants validates key ordering, occupancy bounds, and uniform
// leaf depth (test helper).
func (t *BTree) CheckInvariants() error {
	return t.pool.Tx(func(tx engine.Tx) error {
		root := tx.Load(t.head)
		_, err := t.checkNode(tx, root, 0, ^uint64(0), true, 0, new(int))
		return err
	})
}

func (t *BTree) checkNode(tx engine.Tx, node, lo, hi uint64, isRoot bool, depth int, leafDepth *int) (int, error) {
	nk := int(tx.Load(node + btNKeys))
	if !isRoot && nk < btMinKeys {
		return 0, fmt.Errorf("btree: node %#x underfull (%d keys)", node, nk)
	}
	if nk > btMaxKeys {
		return 0, fmt.Errorf("btree: node %#x overfull (%d keys)", node, nk)
	}
	prev := lo
	for i := 0; i < nk; i++ {
		k := tx.Load(btKeyOff(node, i))
		if (i > 0 || lo != 0) && k < prev || k >= hi {
			return 0, fmt.Errorf("btree: node %#x key %d out of range [%d,%d)", node, k, lo, hi)
		}
		prev = k
	}
	if tx.Load(node+btLeaf) != 0 {
		if *leafDepth == 0 {
			*leafDepth = depth + 1
		} else if *leafDepth != depth+1 {
			return 0, fmt.Errorf("btree: uneven leaf depth")
		}
		return nk, nil
	}
	total := 0
	childLo := lo
	for i := 0; i <= nk; i++ {
		childHi := hi
		if i < nk {
			childHi = tx.Load(btKeyOff(node, i))
		}
		n, err := t.checkNode(tx, tx.Load(btPtrOff(node, i)), childLo, childHi, false, depth+1, leafDepth)
		if err != nil {
			return 0, err
		}
		total += n
		childLo = childHi
	}
	return total, nil
}
