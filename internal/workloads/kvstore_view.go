package workloads

import "errors"

// Lock-free read variants of Get/Scan/ScanRange for the server's seqlock
// read path. They walk the same checksummed structure as the locked
// reads, but through a ReadView — no pool mutex, no journal slot, no
// transaction — while a committer may be mutating the heap concurrently.
//
// The caller (internal/server) brackets each walk with a commit-sequence
// check: snapshot an even sequence, walk, re-check. Inside the bracket
// every anomaly is indistinguishable from "a commit is in flight", so
// these functions never return ErrDataCorrupt; they return
// ErrReadConflict and let the caller retry or fall back to the locked
// path, whose transaction-protected walk adjudicates real media damage.
// Three anomaly classes map to conflict:
//
//   - a checksum mismatch (group or entry): the committer may have
//     stored some words of an update but not yet its CRC;
//   - an out-of-range or misaligned pointer: a chain link read mid-store
//     of a different field, or a stale link into a freed block;
//   - a chain longer than maxChainSteps: a stale next pointer can lead
//     into a cycle through reused blocks, so walks are step-bounded
//     rather than trusted to terminate.
//
// Values that pass both the CRC and the sequence re-check are committed
// state: the sequence bracket proves no commit overlapped the walk, and
// the checksum proves the media bytes are exactly what some committed
// transaction wrote.

// ErrReadConflict reports that a lock-free walk observed state that may
// be a concurrent mutation (or media damage — the locked fallback path
// distinguishes). Retryable by design.
var ErrReadConflict = errors.New("workloads: optimistic read conflict")

// maxChainSteps bounds a lock-free chain walk. Committed chains are
// bounded by pool capacity / entry size; any walk longer than this is a
// cycle through stale pointers, i.e. a conflict.
const maxChainSteps = 1 << 22

// ReadView is the word-granular lock-free window the view reads run
// against (satisfied by pool.ReadView). Load returns ok=false for
// out-of-bounds or misaligned offsets.
type ReadView interface {
	Load(off uint64) (val uint64, ok bool)
}

// loadSlotView is loadSlot against a view: verifies the slot's group
// checksum, returning the chain head or a conflict.
func (kv *KVStore) loadSlotView(v ReadView, b uint64) (uint64, error) {
	g := b / slotGroup
	lo, hi := g*slotGroup, min((g+1)*slotGroup, kv.nBuckets)
	var words [slotGroup]uint64
	n := 0
	for i := lo; i < hi; i++ {
		w, ok := v.Load(kv.buckets + i*8)
		if !ok {
			return 0, ErrReadConflict
		}
		words[n] = w
		n++
	}
	crc, ok := v.Load(kv.groupCRC + g*8)
	if !ok || crc != wordsCRC(words[:n]...) {
		return 0, ErrReadConflict
	}
	return words[b-lo], nil
}

// loadEntryView is loadEntry against a view: reads and CRC-verifies one
// chain entry, mapping any anomaly to a conflict.
func loadEntryView(v ReadView, e uint64) (key, next, val uint64, err error) {
	k, ok1 := v.Load(e + kvKey)
	n, ok2 := v.Load(e + kvNext)
	vv, ok3 := v.Load(e + kvVal)
	c, ok4 := v.Load(e + kvCRC)
	if !ok1 || !ok2 || !ok3 || !ok4 || c != entryCRC(k, n, vv) {
		return 0, 0, 0, ErrReadConflict
	}
	return k, n, vv, nil
}

// GetView is Get through a lock-free view. On ErrReadConflict the caller
// must re-check its sequence bracket and retry or fall back; a nil error
// plus a clean bracket means val/found are committed state.
func (kv *KVStore) GetView(v ReadView, key uint64) (val uint64, found bool, err error) {
	e, err := kv.loadSlotView(v, kv.bucket(key))
	if err != nil {
		return 0, false, err
	}
	for steps := 0; e != 0; steps++ {
		if steps >= maxChainSteps {
			return 0, false, ErrReadConflict
		}
		k, next, vv, err := loadEntryView(v, e)
		if err != nil {
			return 0, false, err
		}
		if k == key {
			return vv, true, nil
		}
		e = next
	}
	return 0, false, nil
}

// ScanView is Scan through a lock-free view (bucket order). fn must be
// side-effect-free until the caller's sequence bracket validates: on
// conflict the caller discards and re-runs, so fn may observe pairs from
// an abandoned attempt.
func (kv *KVStore) ScanView(v ReadView, fn func(key, val uint64) bool) error {
	return kv.ScanRangeView(v, 0, kv.nBuckets, fn)
}

// ScanRangeView is ScanRange through a lock-free view: visits pairs
// whose keys hash into buckets [lo, hi) until fn returns false.
func (kv *KVStore) ScanRangeView(v ReadView, lo, hi uint64, fn func(key, val uint64) bool) error {
	if hi > kv.nBuckets {
		hi = kv.nBuckets
	}
	for b := lo; b < hi; b++ {
		e, err := kv.loadSlotView(v, b)
		if err != nil {
			return err
		}
		for steps := 0; e != 0; steps++ {
			if steps >= maxChainSteps {
				return ErrReadConflict
			}
			k, next, vv, err := loadEntryView(v, e)
			if err != nil {
				return err
			}
			if !fn(k, vv) {
				return nil
			}
			e = next
		}
	}
	return nil
}
