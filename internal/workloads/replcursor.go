package workloads

import (
	"fmt"

	"corundum/internal/baselines/engine"
)

// The replication cursor is the persistent heart of crash-consistent
// primary→replica streaming (internal/repl): a {epoch, seq} pair in the
// store's checksummed meta area recording how far this shard has
// participated in the commit-ordered replication stream.
//
// On a REPLICA, the cursor names the last stream frame durably applied
// to this store: frame apply and cursor advance are fused into ONE
// failure-atomic transaction (ApplyWithCursor), so a power cut at any
// device op leaves either "frame absent, cursor behind" (the frame is
// re-sent and re-applied) or "frame present, cursor advanced" (the frame
// is deduplicated on re-send) — never a half-applied frame counted as
// done.
//
// On a PRIMARY, every group-commit batch rides through ApplyWithCursor
// too: the batch's global stream sequence is written into this shard's
// cursor inside the batch's own transaction, riding the commit fence the
// batch pays anyway (zero extra fences — the same trick as the slab
// cache's claim protocol). After a crash, the primary recovers its last
// issued sequence as the max cursor across shards, so stream numbering
// never regresses and a caught-up replica resumes exactly where it was.
//
// The epoch word is the failover generation: PROMOTE durably bumps it on
// the new primary, and a stale peer (smaller epoch) is refused an
// incremental resume and must re-sync from a snapshot.

// ReadReplCursor reports this shard's durable replication cursor. A zero
// pair means the store never participated in replication.
func (kv *KVStore) ReadReplCursor() (epoch, seq uint64, err error) {
	err = kv.pool.Tx(func(tx engine.Tx) error {
		epoch, seq = tx.Load(kv.meta+kvMetaRepl), tx.Load(kv.meta+kvMetaRepl+8)
		if tx.Load(kv.meta+kvMetaRepl+16) != wordsCRC(epoch, seq) {
			return fmt.Errorf("%w: replication cursor meta slot", ErrDataCorrupt)
		}
		return nil
	})
	return epoch, seq, err
}

// WriteReplCursor durably replaces the cursor in one failure-atomic
// transaction (promotion epoch bumps, bootstrap resets).
func (kv *KVStore) WriteReplCursor(epoch, seq uint64) error {
	return kv.pool.Tx(func(tx engine.Tx) error {
		return kv.writeReplCursorTx(tx, epoch, seq)
	})
}

func (kv *KVStore) writeReplCursorTx(tx engine.Tx, epoch, seq uint64) error {
	if err := tx.Store(kv.meta+kvMetaRepl, epoch); err != nil {
		return err
	}
	if err := tx.Store(kv.meta+kvMetaRepl+8, seq); err != nil {
		return err
	}
	return tx.Store(kv.meta+kvMetaRepl+16, wordsCRC(epoch, seq))
}

// verifyReplCursorTx checks the cursor slot's checksum (attach, scrub).
func (kv *KVStore) verifyReplCursorTx(tx engine.Tx) error {
	e, q := tx.Load(kv.meta+kvMetaRepl), tx.Load(kv.meta+kvMetaRepl+8)
	if tx.Load(kv.meta+kvMetaRepl+16) != wordsCRC(e, q) {
		return fmt.Errorf("%w: replication cursor meta slot", ErrDataCorrupt)
	}
	return nil
}

// ApplyWithCursor runs every op AND advances the replication cursor to
// {epoch, seq} in ONE failure-atomic transaction — the replication
// stream's crash-atomicity primitive on both ends of the link. ops may
// be empty: the transaction then just advances the cursor (a replica
// acknowledging a frame none of whose keys land on this shard).
func (kv *KVStore) ApplyWithCursor(ops []Op, epoch, seq uint64) ([]bool, error) {
	res := make([]bool, len(ops))
	err := kv.pool.Tx(func(tx engine.Tx) error {
		for i, op := range ops {
			if op.Del {
				removed, err := kv.deleteTx(tx, op.Key)
				if err != nil {
					return err
				}
				res[i] = removed
			} else {
				if err := kv.putTx(tx, op.Key, op.Val); err != nil {
					return err
				}
				res[i] = true
			}
		}
		return kv.writeReplCursorTx(tx, epoch, seq)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
