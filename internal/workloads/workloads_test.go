package workloads

import (
	"math/rand"
	"testing"

	"corundum/internal/baselines/atlas"
	"corundum/internal/baselines/corundumeng"
	"corundum/internal/baselines/engine"
	"corundum/internal/baselines/gopmem"
	"corundum/internal/baselines/mnemosyne"
	"corundum/internal/baselines/pmdk"
)

// Libs returns every library model under test.
func libs() []engine.Lib {
	return []engine.Lib{
		corundumeng.Lib{},
		pmdk.Lib{},
		atlas.Lib{},
		mnemosyne.Lib{},
		gopmem.Lib{},
	}
}

func testCfg() engine.Config {
	return engine.Config{Size: 16 << 20}
}

func TestBSTAgainstModelOnAllLibs(t *testing.T) {
	for _, lib := range libs() {
		t.Run(lib.Name(), func(t *testing.T) {
			p, err := lib.Open(testCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			bst, err := NewBST(p)
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 2000; i++ {
				key := uint64(rng.Intn(500))
				switch rng.Intn(3) {
				case 0, 1:
					val := rng.Uint64()
					if err := bst.Insert(key, val); err != nil {
						t.Fatal(err)
					}
					model[key] = val
				case 2:
					removed, err := bst.Remove(key)
					if err != nil {
						t.Fatal(err)
					}
					_, inModel := model[key]
					if removed != inModel {
						t.Fatalf("step %d: remove(%d)=%v, model %v", i, key, removed, inModel)
					}
					delete(model, key)
				}
			}
			for key, want := range model {
				got, found, err := bst.Lookup(key)
				if err != nil {
					t.Fatal(err)
				}
				if !found || got != want {
					t.Fatalf("lookup(%d) = %d,%v want %d", key, got, found, want)
				}
			}
			if _, found, _ := bst.Lookup(1 << 40); found {
				t.Fatal("found a key never inserted")
			}
			n, err := bst.Size()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(model) {
				t.Fatalf("size %d, model %d", n, len(model))
			}
		})
	}
}

func TestKVStoreAgainstModelOnAllLibs(t *testing.T) {
	for _, lib := range libs() {
		t.Run(lib.Name(), func(t *testing.T) {
			p, err := lib.Open(testCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			kv, err := NewKVStore(p, 256)
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 2000; i++ {
				key := uint64(rng.Intn(400))
				switch rng.Intn(4) {
				case 0, 1:
					val := rng.Uint64()
					if err := kv.Put(key, val); err != nil {
						t.Fatal(err)
					}
					model[key] = val
				case 2:
					got, found, err := kv.Get(key)
					if err != nil {
						t.Fatal(err)
					}
					want, inModel := model[key]
					if found != inModel || (found && got != want) {
						t.Fatalf("get(%d) = %d,%v want %d,%v", key, got, found, want, inModel)
					}
				case 3:
					removed, err := kv.Delete(key)
					if err != nil {
						t.Fatal(err)
					}
					_, inModel := model[key]
					if removed != inModel {
						t.Fatalf("delete(%d) = %v, model %v", key, removed, inModel)
					}
					delete(model, key)
				}
			}
			n, err := kv.Len()
			if err != nil {
				t.Fatal(err)
			}
			if n != len(model) {
				t.Fatalf("len %d, model %d", n, len(model))
			}
		})
	}
}

func TestBTreeAgainstModelOnAllLibs(t *testing.T) {
	for _, lib := range libs() {
		t.Run(lib.Name(), func(t *testing.T) {
			p, err := lib.Open(testCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			bt, err := NewBTree(p)
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 3000; i++ {
				key := uint64(1 + rng.Intn(600))
				switch rng.Intn(4) {
				case 0, 1:
					val := rng.Uint64()
					if err := bt.Insert(key, val); err != nil {
						t.Fatal(err)
					}
					model[key] = val
				case 2:
					got, found, err := bt.Lookup(key)
					if err != nil {
						t.Fatal(err)
					}
					want, inModel := model[key]
					if found != inModel || (found && got != want) {
						t.Fatalf("step %d: lookup(%d) = %d,%v want %d,%v", i, key, got, found, want, inModel)
					}
				case 3:
					removed, err := bt.Remove(key)
					if err != nil {
						t.Fatal(err)
					}
					_, inModel := model[key]
					if removed != inModel {
						t.Fatalf("step %d: remove(%d) = %v, model %v", i, key, removed, inModel)
					}
					delete(model, key)
				}
				if i%500 == 499 {
					if err := bt.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
				}
			}
			if err := bt.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The leaf chain must enumerate exactly the model, in order.
			seen := 0
			if err := bt.Scan(func(k, v uint64) bool {
				want, ok := model[k]
				if !ok || v != want {
					t.Fatalf("scan saw (%d,%d), model has %d,%v", k, v, want, ok)
				}
				seen++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if seen != len(model) {
				t.Fatalf("scan saw %d keys, model has %d", seen, len(model))
			}
		})
	}
}

func TestBTreeSequentialInsertAndDeleteAll(t *testing.T) {
	p, err := corundumeng.Lib{}.Open(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	bt, err := NewBTree(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := uint64(1); i <= n; i++ {
		if err := bt.Insert(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= n; i++ {
		got, found, err := bt.Lookup(i)
		if err != nil || !found || got != i*10 {
			t.Fatalf("lookup(%d) = %d,%v,%v", i, got, found, err)
		}
	}
	// Delete everything; the tree must shrink back to a single empty leaf.
	for i := uint64(1); i <= n; i++ {
		removed, err := bt.Remove(i)
		if err != nil || !removed {
			t.Fatalf("remove(%d) = %v,%v", i, removed, err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		if _, found, _ := bt.Lookup(i); found {
			t.Fatalf("key %d survived deletion", i)
		}
	}
}

func TestBSTTransactionalAbortConsistency(t *testing.T) {
	// Force an abort in the middle of structural updates and verify the
	// structure is intact on every library.
	for _, lib := range libs() {
		t.Run(lib.Name(), func(t *testing.T) {
			p, err := lib.Open(testCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			bst, err := NewBST(p)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 50; i++ {
				if err := bst.Insert(i*7%50, i); err != nil {
					t.Fatal(err)
				}
			}
			n1, _ := bst.Size()
			// An aborted transaction that would have rewired the tree.
			errBoom := p.Tx(func(tx engine.Tx) error {
				head := p.Root()
				root := tx.Load(head)
				if err := tx.Store(root+bstLeft, 0); err != nil {
					return err
				}
				return errAbort
			})
			if errBoom != errAbort {
				t.Fatalf("tx returned %v", errBoom)
			}
			n2, _ := bst.Size()
			if n1 != n2 {
				t.Fatalf("aborted tx changed the tree: %d -> %d nodes", n1, n2)
			}
		})
	}
}

var errAbort = errAbortType{}

type errAbortType struct{}

func (errAbortType) Error() string { return "deliberate abort" }
