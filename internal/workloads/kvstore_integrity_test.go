package workloads

import (
	"errors"
	"testing"

	"corundum/internal/baselines/corundumeng"
	"corundum/internal/baselines/engine"
)

// openKV builds a KVStore on a Corundum pool and loads it with keys
// 1..n (val = key*10).
func openKV(t *testing.T, n int) (engine.Pool, *KVStore) {
	t.Helper()
	p, err := corundumeng.Lib{}.Open(engine.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	kv, err := NewKVStore(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= uint64(n); k++ {
		if err := kv.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	return p, kv
}

// entryOf finds key's entry offset by walking its chain raw.
func entryOf(t *testing.T, p engine.Pool, kv *KVStore, key uint64) uint64 {
	t.Helper()
	var found uint64
	err := p.Tx(func(tx engine.Tx) error {
		for e := tx.Load(kv.buckets + kv.bucket(key)*8); e != 0; e = tx.Load(e + kvNext) {
			if tx.Load(e+kvKey) == key {
				found = e
				return nil
			}
		}
		return nil
	})
	if err != nil || found == 0 {
		t.Fatalf("entry for key %d not found: %v", key, err)
	}
	return found
}

func TestKVStoreDetectsEntryCorruption(t *testing.T) {
	p, kv := openKV(t, 32)
	e := entryOf(t, p, kv, 7)
	p.Device().InjectBitFlip(e+kvVal, 5)

	if _, _, err := kv.Get(7); !errors.Is(err, ErrDataCorrupt) {
		t.Fatalf("Get over flipped value = %v, want ErrDataCorrupt", err)
	}
	if err := kv.Scan(func(_, _ uint64) bool { return true }); !errors.Is(err, ErrDataCorrupt) {
		t.Fatalf("Scan over flipped value = %v, want ErrDataCorrupt", err)
	}
	if err := kv.VerifyIntegrity(); !errors.Is(err, ErrDataCorrupt) {
		t.Fatalf("VerifyIntegrity = %v, want ErrDataCorrupt", err)
	}
	// Keys hashing to other buckets are unaffected.
	other := uint64(0)
	for k := uint64(1); k <= 32; k++ {
		if kv.bucket(k) != kv.bucket(7) {
			other = k
			break
		}
	}
	if v, ok, err := kv.Get(other); err != nil || !ok || v != other*10 {
		t.Fatalf("Get(%d) = %d,%v,%v after unrelated corruption", other, v, ok, err)
	}
}

func TestKVStoreDetectsBucketSlotCorruption(t *testing.T) {
	p, kv := openKV(t, 32)
	b := kv.bucket(7)
	p.Device().InjectBitFlip(kv.buckets+b*8, 3)

	if _, _, err := kv.Get(7); !errors.Is(err, ErrDataCorrupt) {
		t.Fatalf("Get over flipped slot = %v, want ErrDataCorrupt", err)
	}
	if err := kv.VerifyIntegrity(); !errors.Is(err, ErrDataCorrupt) {
		t.Fatalf("VerifyIntegrity = %v, want ErrDataCorrupt", err)
	}
}

func TestKVStoreAttachDetectsDirCorruption(t *testing.T) {
	p, kv := openKV(t, 4)
	p.Device().InjectBitFlip(kv.dir, 1) // nBuckets word
	if _, err := AttachKVStore(p); !errors.Is(err, ErrDataCorrupt) {
		t.Fatalf("AttachKVStore over flipped directory = %v, want ErrDataCorrupt", err)
	}
}

func TestKVStoreIntegrityCleanAfterChurn(t *testing.T) {
	_, kv := openKV(t, 64)
	for k := uint64(1); k <= 64; k += 2 {
		if _, err := kv.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(100); k < 130; k++ {
		if err := kv.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity after churn: %v", err)
	}
	n, err := kv.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 32+30 {
		t.Fatalf("Len = %d, want 62", n)
	}
}
