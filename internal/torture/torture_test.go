package torture

import "testing"

// TestCampaigns runs several deterministic crash campaigns. Any torn
// state, corruption, or lost acknowledged transaction fails the test.
func TestCampaigns(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		res, err := Campaign(seed, 150)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Crashes == 0 {
			t.Errorf("seed %d: campaign never crashed; injection broken?", seed)
		}
		if res.RolledBack+res.RolledFwd != res.Crashes {
			t.Errorf("seed %d: crash accounting off: %d+%d != %d",
				seed, res.RolledBack, res.RolledFwd, res.Crashes)
		}
		t.Logf("seed %d: %d iterations, %d crashes (%d rolled back, %d rolled forward, %d with eviction), final map %d keys",
			seed, res.Iterations, res.Crashes, res.RolledBack, res.RolledFwd, res.Evictions, res.FinalMapLen)
	}
}
