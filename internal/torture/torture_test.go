package torture

import "testing"

// TestConcurrentCampaigns runs crash campaigns with several goroutines
// transacting on the same pool: crashes land while multiple journals are
// in flight, and recovery must leave every worker's shard exactly
// pre- or post-transaction.
func TestConcurrentCampaigns(t *testing.T) {
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, workers := range workerCounts {
		for seed := int64(1); seed <= 2; seed++ {
			res, err := ConcurrentCampaign(seed, 200, workers)
			if err != nil {
				t.Fatalf("workers %d seed %d: %v", workers, seed, err)
			}
			if res.Crashes == 0 {
				t.Errorf("workers %d seed %d: campaign never crashed; injection broken?", workers, seed)
			}
			t.Logf("workers %d seed %d: %d txs attempted, %d crashes (%d rolled back, %d rolled forward, %d with eviction), %d keys",
				workers, seed, res.Iterations, res.Crashes, res.RolledBack, res.RolledFwd, res.Evictions, res.FinalMapLen)
		}
	}
}

// TestCampaigns runs several deterministic crash campaigns. Any torn
// state, corruption, or lost acknowledged transaction fails the test.
func TestCampaigns(t *testing.T) {
	seeds, iterations := int64(4), 150
	if testing.Short() {
		seeds, iterations = 2, 75
	}
	for seed := int64(1); seed <= seeds; seed++ {
		res, err := Campaign(seed, iterations)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Crashes == 0 {
			t.Errorf("seed %d: campaign never crashed; injection broken?", seed)
		}
		if res.RolledBack+res.RolledFwd != res.Crashes {
			t.Errorf("seed %d: crash accounting off: %d+%d != %d",
				seed, res.RolledBack, res.RolledFwd, res.Crashes)
		}
		t.Logf("seed %d: %d iterations, %d crashes (%d rolled back, %d rolled forward, %d with eviction), final map %d keys",
			seed, res.Iterations, res.Crashes, res.RolledBack, res.RolledFwd, res.Evictions, res.FinalMapLen)
	}
}
