// Package torture runs randomized crash-injection campaigns against a
// live pool: every iteration executes a random transaction while power may
// be cut at a random device operation; after each crash the pool is
// recovered and the persistent state is checked against a volatile model.
// The linearizability contract checked is the standard one for
// failure-atomic transactions: a transaction that returned successfully
// must be fully visible after recovery; a transaction interrupted by the
// crash may be fully visible or fully absent; nothing may ever be torn.
//
// This is the in-repo counterpart of PM testing tools like Yat and PMTest
// from the paper's related work (§5) — but running against the emulated
// device, so campaigns are deterministic per seed and run in CI.
package torture

import (
	"fmt"
	"math/rand"

	"corundum/internal/containers"
	"corundum/internal/core"
	"corundum/internal/pmem"
	"corundum/internal/pool"
)

// Tag is the pool tag torture campaigns run in.
type Tag struct{}

// Root composes the structures under torture.
type Root struct {
	Map   containers.SortedMap[int64, Tag]
	Stack containers.Stack[int64, Tag]
}

// Result summarizes a campaign.
type Result struct {
	Iterations  int
	Crashes     int
	RolledBack  int // interrupted transactions that ended up absent
	RolledFwd   int // interrupted transactions that ended up visible
	Evictions   int // crashes with adversarial cache eviction
	FinalMapLen int
}

// model mirrors the persistent state in volatile memory.
type model struct {
	m     map[uint64]int64
	stack []int64
}

func (mo *model) clone() *model {
	c := &model{m: make(map[uint64]int64, len(mo.m)), stack: append([]int64(nil), mo.stack...)}
	for k, v := range mo.m {
		c.m[k] = v
	}
	return c
}

// Campaign runs iterations random transactions with crash injection under
// the given seed and returns statistics. It returns an error on any
// consistency violation — torn state, structural corruption, or a lost
// acknowledged transaction.
func Campaign(seed int64, iterations int) (*Result, error) {
	cfg := core.Config{Size: 32 << 20, Journals: 4, Mem: pmem.Options{TrackCrash: true}}
	root, err := core.Open[Root, Tag]("", cfg)
	if err != nil {
		return nil, err
	}
	defer core.ClosePool[Tag]()

	rng := rand.New(rand.NewSource(seed))
	res := &Result{}
	mo := &model{m: map[uint64]int64{}}

	for i := 0; i < iterations; i++ {
		res.Iterations++
		pending := mo.clone()
		crashAt := 1 + rng.Intn(400)
		evict := rng.Intn(4) == 0
		evictSeed := rng.Int63()

		dev := core.DeviceOf[Tag]()
		var count int
		dev.SetFaultInjector(func(op pmem.Op) bool {
			count++
			return count == crashAt
		})

		acked := false
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrInjectedCrash {
						panic(r)
					}
					crashed = true
				}
			}()
			err := core.Transaction[Tag](func(j *core.Journal[Tag]) error {
				return randomTx(j, root.Deref(), rng, pending)
			})
			if err != nil {
				panic(fmt.Sprintf("torture: transaction error: %v", err))
			}
			acked = true
		}()
		dev.SetFaultInjector(nil)

		if acked {
			mo = pending
			continue
		}
		if !crashed {
			return nil, fmt.Errorf("iteration %d: transaction neither acked nor crashed", i)
		}
		res.Crashes++

		// Power loss and reboot.
		if evict {
			res.Evictions++
			dev.CrashWithEviction(evictSeed)
		} else {
			dev.Crash()
		}
		if err := core.ClosePool[Tag](); err != nil {
			return nil, err
		}
		p2, err := pool.Attach(dev)
		if err != nil {
			return nil, fmt.Errorf("iteration %d: recovery failed: %w", i, err)
		}
		if err := p2.CheckConsistency(); err != nil {
			return nil, fmt.Errorf("iteration %d: heap corrupt after recovery: %w", i, err)
		}
		adopted, err := core.Adopt[Root, Tag](p2)
		if err != nil {
			return nil, err
		}
		root = adopted

		switch matchErr, pendErr := verify(root.Deref(), mo), verify(root.Deref(), pending); {
		case matchErr == nil:
			res.RolledBack++
		case pendErr == nil:
			res.RolledFwd++
			mo = pending
		default:
			return nil, fmt.Errorf("iteration %d (crashAt=%d evict=%v): state is neither pre- nor post-transaction:\n pre: %v\n post: %v",
				i, crashAt, evict, matchErr, pendErr)
		}
	}
	res.FinalMapLen = len(mo.m)
	// Final structural check.
	if err := root.Deref().Map.CheckInvariants(); err != nil {
		return nil, err
	}
	return res, verify(root.Deref(), mo)
}

// randomTx applies 1-6 random operations inside one transaction, updating
// the pending model to match.
func randomTx(j *core.Journal[Tag], r *Root, rng *rand.Rand, pending *model) error {
	ops := 1 + rng.Intn(6)
	for k := 0; k < ops; k++ {
		switch rng.Intn(5) {
		case 0, 1: // map put
			key := uint64(1 + rng.Intn(200))
			val := rng.Int63()
			if err := r.Map.Put(j, key, val); err != nil {
				return err
			}
			pending.m[key] = val
		case 2: // map delete
			key := uint64(1 + rng.Intn(200))
			removed, err := r.Map.Delete(j, key)
			if err != nil {
				return err
			}
			_, in := pending.m[key]
			if removed != in {
				return fmt.Errorf("delete(%d) disagreed with model", key)
			}
			delete(pending.m, key)
		case 3: // stack push
			v := rng.Int63()
			if err := r.Stack.Push(j, v); err != nil {
				return err
			}
			pending.stack = append(pending.stack, v)
		case 4: // stack pop
			v, ok, err := r.Stack.Pop(j)
			if err != nil {
				return err
			}
			if ok != (len(pending.stack) > 0) {
				return fmt.Errorf("pop disagreed with model")
			}
			if ok {
				want := pending.stack[len(pending.stack)-1]
				pending.stack = pending.stack[:len(pending.stack)-1]
				if v != want {
					return fmt.Errorf("pop %d want %d", v, want)
				}
			}
		}
	}
	return nil
}

// verify compares the persistent structures to a model.
func verify(r *Root, mo *model) error {
	if got := r.Map.Len(); got != len(mo.m) {
		return fmt.Errorf("map len %d, model %d", got, len(mo.m))
	}
	bad := error(nil)
	seen := 0
	r.Map.Scan(func(k uint64, v *int64) bool {
		want, ok := mo.m[k]
		if !ok || want != *v {
			bad = fmt.Errorf("map key %d = %d, model %d (present=%v)", k, *v, want, ok)
			return false
		}
		seen++
		return true
	})
	if bad != nil {
		return bad
	}
	if seen != len(mo.m) {
		return fmt.Errorf("scan saw %d keys, model %d", seen, len(mo.m))
	}
	if got := r.Stack.Len(); got != len(mo.stack) {
		return fmt.Errorf("stack len %d, model %d", got, len(mo.stack))
	}
	i := len(mo.stack) - 1
	r.Stack.Range(func(v *int64) bool {
		if *v != mo.stack[i] {
			bad = fmt.Errorf("stack[%d] = %d, model %d", i, *v, mo.stack[i])
			return false
		}
		i--
		return true
	})
	return bad
}
