package torture

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"corundum/internal/containers"
	"corundum/internal/core"
	"corundum/internal/pmem"
	"corundum/internal/pool"
)

// This file adds the concurrent campaign mode: N goroutines issue
// transactions against the same pool while power is cut at a random
// device operation across ALL of them. The serial mode exercises one
// journal at a time; this mode is what actually stresses the
// sharded-journal concurrency path (multiple undo logs in flight,
// allocator arenas serving different transactions, recovery walking
// several non-idle journals). The invariant checked per transaction is
// unchanged: acknowledged means fully visible after recovery,
// interrupted means all-or-nothing.

// CTag tags the pool concurrent campaigns run in.
type CTag struct{}

// MaxWorkers bounds the campaign's concurrency (the root carries one
// shard per worker).
const MaxWorkers = 16

// ShardedRoot gives every worker its own persistent map. Workers share
// the pool — journals, heap arenas, the device — but not data
// structures, so crash injection lands in genuinely concurrent
// transaction machinery while each worker's model stays independently
// checkable.
type ShardedRoot struct {
	Shards [MaxWorkers]containers.HashMap[uint64, int64, CTag]
}

// shardWorker is one goroutine's volatile mirror of its shard.
type shardWorker struct {
	shard     int
	rng       *rand.Rand
	committed map[uint64]int64 // model of acknowledged state
	pending   map[uint64]int64 // model including the interrupted tx
	inDoubt   bool             // this round ended in a mid-tx crash
	attempted int
	err       error
}

// runRound issues up to quota transactions against the worker's shard,
// stopping at the first injected crash (every device operation after the
// power cut panics, so an in-flight transaction can never half-complete
// silently).
func (w *shardWorker) runRound(r *ShardedRoot, quota int) {
	w.inDoubt = false
	shard := &r.Shards[w.shard]
	for k := 0; k < quota; k++ {
		pending := make(map[uint64]int64, len(w.committed))
		for key, v := range w.committed {
			pending[key] = v
		}
		crashed := false
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if rec != pmem.ErrInjectedCrash {
						panic(rec)
					}
					crashed = true
				}
			}()
			w.attempted++
			if err := core.Transaction[CTag](func(j *core.Journal[CTag]) error {
				return randomShardTx(j, shard, w.rng, pending)
			}); err != nil {
				w.err = fmt.Errorf("transaction error: %w", err)
			}
		}()
		if w.err != nil {
			return
		}
		if crashed {
			w.inDoubt = true
			w.pending = pending
			return
		}
		w.committed = pending
	}
}

// randomShardTx applies 1-4 random operations to one shard inside one
// transaction, keeping the pending model in lockstep.
func randomShardTx(j *core.Journal[CTag], m *containers.HashMap[uint64, int64, CTag], rng *rand.Rand, pending map[uint64]int64) error {
	ops := 1 + rng.Intn(4)
	for k := 0; k < ops; k++ {
		key := uint64(1 + rng.Intn(64))
		switch rng.Intn(3) {
		case 0, 1:
			val := rng.Int63()
			if err := m.Put(j, key, val); err != nil {
				return err
			}
			pending[key] = val
		case 2:
			removed, err := m.Delete(j, key)
			if err != nil {
				return err
			}
			if _, in := pending[key]; removed != in {
				return fmt.Errorf("delete(%d) disagreed with model", key)
			}
			delete(pending, key)
		}
	}
	return nil
}

// verifyShard compares one persistent shard against a model.
func verifyShard(m *containers.HashMap[uint64, int64, CTag], model map[uint64]int64) error {
	if got := m.Len(); got != len(model) {
		return fmt.Errorf("shard len %d, model %d", got, len(model))
	}
	var bad error
	seen := 0
	m.Range(func(k uint64, v *int64) bool {
		want, ok := model[k]
		if !ok || want != *v {
			bad = fmt.Errorf("shard key %d = %d, model %d (present=%v)", k, *v, want, ok)
			return false
		}
		seen++
		return true
	})
	if bad != nil {
		return bad
	}
	if seen != len(model) {
		return fmt.Errorf("range saw %d keys, model %d", seen, len(model))
	}
	return nil
}

// ConcurrentCampaign runs randomized crash-injection rounds with the
// given number of worker goroutines transacting concurrently on one
// pool, until at least iterations transactions have been attempted. It
// returns an error on any consistency violation. RolledBack/RolledFwd
// count per-worker in-doubt transactions (one crash can leave several
// journals non-idle, so they need not sum to Crashes as in the serial
// mode).
func ConcurrentCampaign(seed int64, iterations, workers int) (*Result, error) {
	if workers < 1 || workers > MaxWorkers {
		return nil, fmt.Errorf("torture: workers must be in [1,%d], got %d", MaxWorkers, workers)
	}
	// Journals >= workers: after the power cut, a transaction's cleanup
	// panics before returning its journal slot, so a worker waiting for a
	// free slot would otherwise wait forever on a dead round.
	cfg := core.Config{Size: 64 << 20, Journals: workers + 2, Mem: pmem.Options{TrackCrash: true}}
	root, err := core.Open[ShardedRoot, CTag]("", cfg)
	if err != nil {
		return nil, err
	}
	defer core.ClosePool[CTag]()

	rng := rand.New(rand.NewSource(seed))
	res := &Result{}
	ws := make([]*shardWorker, workers)
	for i := range ws {
		ws[i] = &shardWorker{shard: i, committed: map[uint64]int64{}}
	}

	// Build each shard's bucket directory before arming the injector: the
	// directory allocation is one huge transaction that would otherwise
	// absorb nearly every early crash, starving the campaign of
	// steady-state coverage. (Crashes during structure growth still occur
	// via chain allocations.)
	for i := 0; i < workers; i++ {
		shard := &root.Deref().Shards[i]
		if err := core.Transaction[CTag](func(j *core.Journal[CTag]) error {
			if err := shard.Put(j, 1, 0); err != nil {
				return err
			}
			_, err := shard.Delete(j, 1)
			return err
		}); err != nil {
			return nil, fmt.Errorf("shard %d init: %w", i, err)
		}
	}

	const quota = 4 // transactions per worker per round
	for res.Iterations < iterations {
		crashAt := uint64(1 + rng.Intn(400*workers))
		evict := rng.Intn(4) == 0
		evictSeed := rng.Int63()
		for _, w := range ws {
			w.rng = rand.New(rand.NewSource(rng.Int63()))
		}

		dev := core.DeviceOf[CTag]()
		var count atomic.Uint64
		var fired atomic.Bool
		dev.SetFaultInjector(func(op pmem.Op) bool {
			if count.Add(1) == crashAt {
				fired.Store(true)
				return true
			}
			return false
		})

		r := root.Deref()
		var wg sync.WaitGroup
		for _, w := range ws {
			wg.Add(1)
			go func(w *shardWorker) {
				defer wg.Done()
				w.runRound(r, quota)
			}(w)
		}
		wg.Wait()
		dev.SetFaultInjector(nil)

		for _, w := range ws {
			res.Iterations += w.attempted
			w.attempted = 0
			if w.err != nil {
				return nil, fmt.Errorf("worker %d: %w", w.shard, w.err)
			}
		}
		if !fired.Load() {
			continue // the round finished before the scheduled power cut
		}
		res.Crashes++

		// Power loss and reboot, exactly as in the serial mode.
		if evict {
			res.Evictions++
			dev.CrashWithEviction(evictSeed)
		} else {
			dev.Crash()
		}
		if err := core.ClosePool[CTag](); err != nil {
			return nil, err
		}
		p2, err := pool.Attach(dev)
		if err != nil {
			return nil, fmt.Errorf("crash %d: recovery failed: %w", res.Crashes, err)
		}
		if err := p2.CheckConsistency(); err != nil {
			return nil, fmt.Errorf("crash %d: heap corrupt after recovery: %w", res.Crashes, err)
		}
		adopted, err := core.Adopt[ShardedRoot, CTag](p2)
		if err != nil {
			return nil, err
		}
		root = adopted
		r = root.Deref()

		for _, w := range ws {
			shard := &r.Shards[w.shard]
			switch {
			case verifyShard(shard, w.committed) == nil:
				if w.inDoubt {
					res.RolledBack++
				}
			case w.inDoubt && verifyShard(shard, w.pending) == nil:
				res.RolledFwd++
				w.committed = w.pending
			default:
				preErr := verifyShard(shard, w.committed)
				return nil, fmt.Errorf("crash %d (crashAt=%d evict=%v) worker %d: state is neither pre- nor post-transaction (inDoubt=%v): %v",
					res.Crashes, crashAt, evict, w.shard, w.inDoubt, preErr)
			}
			w.inDoubt = false
		}
	}

	// Final structural and content check of every shard.
	r := root.Deref()
	for _, w := range ws {
		if err := verifyShard(&r.Shards[w.shard], w.committed); err != nil {
			return nil, fmt.Errorf("final check, worker %d: %w", w.shard, err)
		}
		res.FinalMapLen += len(w.committed)
	}
	return res, nil
}
