package pool

import (
	"encoding/binary"
	"errors"
	"testing"

	"corundum/internal/alloc"
	"corundum/internal/journal"
	"corundum/internal/pmem"
)

// corruptFreeHead smashes arena 0's first nonzero metadata word (a free
// list head — the leading redo-log area is all zeros at rest) so the
// structure itself, not just a checksum, is damaged.
func corruptFreeHead(t *testing.T, dev *pmem.Device) {
	t.Helper()
	g, err := computeGeometryOf(dev)
	if err != nil {
		t.Fatal(err)
	}
	for off := g.metaOff; off < g.metaOff+alloc.MetaSize(g.arenaHeap); off += 8 {
		if binary.LittleEndian.Uint64(dev.Bytes()[off:]) != 0 {
			binary.LittleEndian.PutUint64(dev.Bytes()[off:], 0xDEADBEEF)
			dev.MarkDirty(off, 8)
			dev.Persist(off, 8)
			return
		}
	}
	t.Fatal("no nonzero metadata word found")
}

func TestHeaderMirrorSurvivesDamage(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := p.Device()
	gen := p.Generation()
	// Damage static header copy A at rest: the mirror must carry Attach.
	dev.InjectBitFlip(fSize, 3)
	p2, err := Attach(dev)
	if err != nil {
		t.Fatalf("attach with damaged header copy A: %v", err)
	}
	if p2.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", p2.Generation(), gen+1)
	}
	// Attach rewrites both copies: the image must be whole again.
	if _, goodA, goodB, err := chooseHeader(dev.Bytes()); err != nil || !goodA || !goodB {
		t.Fatalf("header not repaired after attach: %v %v %v", goodA, goodB, err)
	}
}

func TestHeaderBothCopiesDamagedRefused(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := p.Device()
	dev.InjectBitFlip(hdrCopyAOff+fSize, 1)
	dev.InjectBitFlip(hdrCopyBOff+fSize, 1)
	if _, err := Attach(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("attach with both header copies damaged: %v, want ErrCorrupt", err)
	}
}

func TestRootSlotMirror(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var root uint64
	err = p.Transaction(func(j *journal.Journal) error {
		off, err := p.AllocEx(0, 64, nil, nil)
		if err != nil {
			return err
		}
		root = off
		return p.SetRoot(j, off, 42)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Damage slot A: reads must fall back to the mirror.
	p.Device().InjectBitFlip(rootSlotAOff, 0)
	if got := p.RootOff(); got != root {
		t.Fatalf("RootOff with damaged slot A = %#x, want %#x", got, root)
	}
	if got := p.RootTypeHash(); got != 42 {
		t.Fatalf("RootTypeHash = %d, want 42", got)
	}
	// A scrub repairs the damaged slot in place.
	rep, err := p.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Repairs == 0 {
		t.Fatal("scrub performed no repairs")
	}
	if _, _, ok := decodeRootSlot(p.Device().Bytes()[rootSlotAOff : rootSlotAOff+rootSlotSize]); !ok {
		t.Fatal("slot A still damaged after scrub")
	}
}

func TestAttachRepairFixesChecksumSlot(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := p.Device()
	crcOff, _ := p.arenas[0].ChecksumRegion()
	dev.InjectBitFlip(crcOff, 2)
	if err := Fsck(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("fsck on damaged checksum slot: %v, want ErrCorrupt", err)
	}
	p2, err := AttachRepair(dev)
	if err != nil {
		t.Fatalf("AttachRepair: %v", err)
	}
	if p2.Degraded() {
		t.Fatalf("repairable damage degraded the pool: %s", p2.DegradedReason())
	}
	if err := Fsck(dev); err != nil {
		t.Fatalf("image not clean after repair: %v", err)
	}
}

func TestAttachRepairDegradesOnStructuralDamage(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := p.Device()
	corruptFreeHead(t, dev)
	p2, err := AttachRepair(dev)
	if err != nil {
		t.Fatalf("AttachRepair must degrade, not refuse: %v", err)
	}
	if !p2.Degraded() {
		t.Fatal("pool not degraded")
	}
	if err := p2.Writable(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Writable = %v, want ErrReadOnly", err)
	}
	if _, err := p2.AllocEx(0, 64, nil, nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AllocEx in degraded mode = %v, want ErrReadOnly", err)
	}
	q := p2.Quarantine()
	if len(q) == 0 {
		t.Fatal("no quarantined ranges")
	}
	// The condemned arena's heap span must be named.
	g := p2.geo
	found := false
	for _, r := range q {
		if r.Off == g.heapOff && r.Len == g.arenaHeap {
			found = true
		}
	}
	if !found {
		t.Fatalf("arena 0 heap span not quarantined: %+v", q)
	}
	// Reads still work: the root slots are intact.
	if got := p2.RootOff(); got != 0 {
		t.Fatalf("RootOff = %#x, want 0", got)
	}
}

func TestAttachRepairRefusesPendingPlusCorruption(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := p.Device()
	g := p.geo
	// Journal 0 pending recovery, journal 1 with an impossible state
	// byte: recovery cannot be trusted over damaged journal machinery.
	dev.Write(g.bufOff, []byte{1})
	dev.Persist(g.bufOff, 1)
	dev.Write(g.bufOff+g.bufCap, []byte{5})
	dev.Persist(g.bufOff+g.bufCap, 1)
	if _, err := AttachRepair(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("AttachRepair = %v, want ErrCorrupt", err)
	}
}

func TestScrubDegradesOnUnrepairableDamage(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	corruptFreeHead(t, p.Device())
	rep, err := p.Scrub()
	if err == nil {
		t.Fatal("scrub of structurally damaged arena returned nil")
	}
	if !p.Degraded() {
		t.Fatal("pool not degraded after failed scrub")
	}
	if len(rep.Quarantined) == 0 {
		t.Fatal("no ranges quarantined")
	}
	// A second scrub re-finds the damage but must not duplicate the
	// quarantine entries.
	before := len(p.Quarantine())
	if _, err := p.Scrub(); err == nil {
		t.Fatal("second scrub returned nil")
	}
	if after := len(p.Quarantine()); after != before {
		t.Fatalf("quarantine grew from %d to %d on re-scrub", before, after)
	}
}

func TestScrubCleanPoolIsQuiet(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Scrub()
	if err != nil {
		t.Fatalf("scrub of clean pool: %v", err)
	}
	if rep.Repairs != 0 || len(rep.Problems) != 0 {
		t.Fatalf("clean pool scrub reported %+v", rep)
	}
	if p.Degraded() {
		t.Fatal("clean pool degraded")
	}
}

func TestDegradedPoolRefusesSetRoot(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Degrade("test")
	err = p.Transaction(func(j *journal.Journal) error {
		return p.SetRoot(j, 4096, 1)
	})
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("SetRoot in degraded mode = %v, want ErrReadOnly", err)
	}
}
