package pool

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"corundum/internal/journal"
	"corundum/internal/pmem"
)

func TestTransactionBusyTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.Journals = 1
	p, err := Create("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetAcquireTimeout(10 * time.Millisecond)

	// Occupy the only journal slot from another goroutine.
	hold := make(chan struct{})
	held := make(chan struct{})
	go func() {
		_ = p.Transaction(func(j *journal.Journal) error {
			close(held)
			<-hold
			return nil
		})
	}()
	<-held

	if err := p.Transaction(func(j *journal.Journal) error { return nil }); !errors.Is(err, ErrBusy) {
		t.Fatalf("Transaction under exhaustion = %v, want ErrBusy", err)
	}

	// Retrying after the slot frees must succeed: BUSY is transient.
	close(hold)
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := p.Transaction(func(j *journal.Journal) error { return nil })
		if err == nil {
			break
		}
		if !errors.Is(err, ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("retry after release = %v", err)
		}
	}
}

func TestTransactionBlocksWithoutTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.Journals = 1
	p, err := Create("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	held := make(chan struct{})
	go func() {
		_ = p.Transaction(func(j *journal.Journal) error {
			close(held)
			<-hold
			return nil
		})
	}()
	<-held
	// Default behaviour (no timeout) still blocks until the slot frees.
	got := make(chan error, 1)
	go func() {
		got <- p.Transaction(func(j *journal.Journal) error { return nil })
	}()
	select {
	case err := <-got:
		t.Fatalf("Transaction returned %v before the slot freed", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(hold)
	if err := <-got; err != nil {
		t.Fatalf("blocked Transaction = %v after release", err)
	}
}

func TestFsckAcceptsHealthyAndCrashedPools(t *testing.T) {
	p := newPool(t)
	var cell uint64
	if err := p.Transaction(func(j *journal.Journal) error {
		var err error
		cell, err = j.Alloc(64)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := Fsck(p.Device()); err != nil {
		t.Fatalf("Fsck on healthy pool: %v", err)
	}
	_ = cell

	// A mid-transaction crash leaves a pending journal; that is recovery's
	// job, not corruption, and Fsck must not refuse it.
	func() {
		defer func() { recover() }()
		n := 0
		p.Device().SetFaultInjector(func(op pmem.Op) bool {
			n++
			return n == 8
		})
		_ = p.Transaction(func(j *journal.Journal) error {
			_, err := j.Alloc(64)
			return err
		})
	}()
	p.Device().SetFaultInjector(nil)
	p.Device().Crash()
	if err := Fsck(p.Device()); err != nil {
		t.Fatalf("Fsck on crashed (pending-journal) pool: %v", err)
	}
	if _, err := Attach(p.Device()); err != nil {
		t.Fatalf("Attach after fsck: %v", err)
	}
}

func TestFsckRejectsCorruptImage(t *testing.T) {
	p := newPool(t)
	dev := p.Device()

	// Smash a journal state byte to an undefined value.
	g, err := computeGeometry(dev.Size(), p.Journals(), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	off := g.bufOff // journal 0 state word
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], 99)
	dev.Write(off, w[:])
	dev.Persist(off, 8)

	err = Fsck(dev)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Fsck on smashed state byte = %v, want ErrCorrupt", err)
	}
	if got := err.Error(); got == ErrCorrupt.Error() {
		t.Fatalf("diagnostic carries no detail: %q", got)
	}
}

func TestOpenRefusesCorruptPool(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	cfg := testConfig()
	p, err := Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a journal state byte on disk.
	g, err := computeGeometry(cfg.Size, cfg.Journals, cfg.JournalCap)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{77}, int64(g.bufOff)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path, pmem.Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt pool = %v, want ErrCorrupt", err)
	}
}
