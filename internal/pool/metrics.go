package pool

import (
	"time"

	"corundum/internal/alloc"
	"corundum/internal/journal"
	"corundum/internal/obs"
	"corundum/internal/pmem"
)

// poolMetrics holds the per-transaction instruments EnableMetrics
// registers. The pointer on Pool is atomic so the transaction path can
// check for it without touching the pool lock.
type poolMetrics struct {
	txCommit *obs.Histogram // outermost Begin..commit, seconds
	txAbort  *obs.Histogram // outermost Begin..rollback, seconds
	logBytes *obs.Histogram // undo-log bytes per transaction
}

// EnableMetrics registers this pool's instruments with r and starts
// recording per-transaction latencies. Device traffic (writes, flushes,
// fences, each broken down by attribution scope), journal occupancy, and
// heap usage/fragmentation are exported as live read-outs; transaction
// latency and undo-log volume are histograms fed by the commit path.
// Call it once per registry; duplicate registration panics, as for any
// registry collision.
func (p *Pool) EnableMetrics(r *obs.Registry) { p.EnableMetricsLabeled(r, nil) }

// EnableMetricsLabeled is EnableMetrics with a base label set stamped on
// every series. It is what lets several pools — the shards of a sharded
// server — share one registry: each pool registers the same family names
// under a distinct base (e.g. shard="3") instead of colliding.
func (p *Pool) EnableMetricsLabeled(r *obs.Registry, base obs.Labels) {
	lbl := func(extra obs.Labels) obs.Labels {
		if len(base) == 0 {
			return extra
		}
		out := make(obs.Labels, len(base)+len(extra))
		for k, v := range base {
			out[k] = v
		}
		for k, v := range extra {
			out[k] = v
		}
		return out
	}
	dev := p.dev
	for sc := pmem.Scope(0); sc < pmem.NumScopes; sc++ {
		sc := sc
		scopeLbl := lbl(obs.Labels{"scope": sc.String()})
		r.CounterFunc("pmem_writes_total", "device writes by attribution scope", scopeLbl,
			func() uint64 { return dev.Stats().ByScope[sc].Writes })
		r.CounterFunc("pmem_flushes_total", "cache-line flushes by attribution scope", scopeLbl,
			func() uint64 { return dev.Stats().ByScope[sc].Flushes })
		r.CounterFunc("pmem_fences_total", "fences by attribution scope", scopeLbl,
			func() uint64 { return dev.Stats().ByScope[sc].Fences })
	}
	r.GaugeFunc("pool_journals", "journal slots (transaction concurrency bound)", lbl(nil),
		func() float64 { return float64(p.Journals()) })
	r.GaugeFunc("pool_journals_in_use", "journal slots running a transaction", lbl(nil),
		func() float64 { return float64(p.Journals() - p.JournalsFree()) })
	r.GaugeFunc("pool_heap_in_use_bytes", "allocated heap bytes across arenas", lbl(nil),
		func() float64 { return float64(p.InUse()) })
	r.GaugeFunc("pool_heap_free_bytes", "free heap bytes across arenas", lbl(nil),
		func() float64 { return float64(p.FreeBytes()) })
	r.GaugeFunc("pool_heap_fragmentation_ratio", "1 - largest free block / free bytes, worst arena", lbl(nil),
		p.fragmentation)
	slabSum := func(pick func(alloc.SlabStats) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for i := range p.arenas {
				n += pick(p.ArenaSlabStats(i))
			}
			return n
		}
	}
	r.CounterFunc("pool_slab_hits_total", "allocations served from the slab cache (zero redo fences)", lbl(nil),
		slabSum(func(s alloc.SlabStats) uint64 { return s.Hits }))
	r.CounterFunc("pool_slab_misses_total", "allocations that fell through to a refill batch", lbl(nil),
		slabSum(func(s alloc.SlabStats) uint64 { return s.Misses }))
	r.CounterFunc("pool_slab_frees_total", "frees parked in the slab cache (zero redo fences)", lbl(nil),
		slabSum(func(s alloc.SlabStats) uint64 { return s.Frees }))
	r.CounterFunc("pool_slab_refills_total", "bulk slab refill batches", lbl(nil),
		slabSum(func(s alloc.SlabStats) uint64 { return s.Refills }))
	r.CounterFunc("pool_slab_spills_total", "bulk slab spill batches", lbl(nil),
		slabSum(func(s alloc.SlabStats) uint64 { return s.Spills }))
	r.GaugeFunc("pool_slab_cached_blocks", "blocks currently parked in slab caches", lbl(nil),
		func() float64 { return float64(slabSum(func(s alloc.SlabStats) uint64 { return s.Cached })()) })
	r.GaugeFunc("pool_slab_cached_bytes", "bytes currently parked in slab caches", lbl(nil),
		func() float64 { return float64(slabSum(func(s alloc.SlabStats) uint64 { return s.Bytes })()) })
	r.GaugeFunc("pool_degraded", "1 when the pool is in degraded read-only mode", lbl(nil),
		func() float64 {
			if p.Degraded() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("pool_quarantined_ranges", "byte ranges condemned by repair/scrub", lbl(nil),
		func() float64 { return float64(len(p.Quarantine())) })
	// Open-time recovery timeline: one gauge per phase. The timeline is
	// immutable after Attach, so the closure only captures a value.
	for _, ph := range p.recoveryTimeline {
		secs := ph.Seconds
		r.GaugeFunc("pool_recovery_seconds", "open-time recovery phase duration", lbl(obs.Labels{"phase": ph.Name}),
			func() float64 { return secs })
	}
	r.CounterFunc("pool_scrub_runs_total", "online scrub passes", lbl(nil), p.scrubRuns.Load)
	r.CounterFunc("pool_scrub_repairs_total", "mirror/checksum repairs performed by scrubs", lbl(nil), p.scrubRepairs.Load)
	r.CounterFunc("pool_scrub_problems_total", "problems found by scrubs (repaired or not)", lbl(nil), p.scrubProblems.Load)
	r.CounterFunc("pmem_media_faults_torn_lines_total", "cache lines persisted partially at a torn crash", lbl(nil),
		func() uint64 { return dev.MediaFaults().TornLines })
	r.CounterFunc("pmem_media_faults_torn_words_total", "8-byte words persisted by torn crashes", lbl(nil),
		func() uint64 { return dev.MediaFaults().TornWords })
	r.CounterFunc("pmem_media_faults_bit_flips_total", "injected at-rest bit flips", lbl(nil),
		func() uint64 { return dev.MediaFaults().BitFlips })
	r.CounterFunc("pmem_media_faults_bad_lines_total", "lines marked unreadable by media damage", lbl(nil),
		func() uint64 { return dev.MediaFaults().BadLines })

	m := &poolMetrics{
		txCommit: r.Histogram("pool_tx_seconds", "committed transaction latency", lbl(obs.Labels{"outcome": "commit"}), obs.LatencyBuckets),
		txAbort:  r.Histogram("pool_tx_seconds", "committed transaction latency", lbl(obs.Labels{"outcome": "abort"}), obs.LatencyBuckets),
		logBytes: r.Histogram("pool_tx_log_bytes", "undo-log bytes per transaction", lbl(nil), obs.ByteBuckets),
	}
	p.metrics.Store(m)
}

// fragmentation reports how far the worst arena is from being able to
// serve its free space as one block: 0 when every arena's free space is
// one contiguous run, approaching 1 when free space is shattered.
func (p *Pool) fragmentation() float64 {
	worst := 0.0
	for _, a := range p.arenas {
		s := a.FreeSummary()
		if s.FreeBytes == 0 {
			continue
		}
		if f := 1 - float64(s.LargestBlock)/float64(s.FreeBytes); f > worst {
			worst = f
		}
	}
	return worst
}

// observeTx records one outermost transaction's latency and log volume.
func (m *poolMetrics) observeTx(j *journal.Journal, committed bool, began time.Time) {
	h := m.txCommit
	if !committed {
		h = m.txAbort
	}
	h.Observe(time.Since(began).Seconds())
	m.logBytes.Observe(float64(j.LogBytes()))
}

// FlightDump renders the device's flight-recorder history (empty when no
// recorder is installed). Crash tests print it to explain what the last
// fences before the cut were doing.
func (p *Pool) FlightDump() string {
	return pmem.FormatFlight(p.dev.FlightEvents())
}
