package pool

import (
	"fmt"
	"time"

	"corundum/internal/alloc"
	"corundum/internal/journal"
	"corundum/internal/pmem"
)

// OpenRepair is Open with a self-healing fallback: instead of refusing a
// structurally damaged image, it repairs what the mirrored headers, root
// slots, and allocator checksums cover, and — when damage remains — opens
// the pool in degraded read-only mode with the damaged ranges
// quarantined, so intact data stays readable. The only images it still
// refuses are those that cannot be parsed at all and those where
// corruption coexists with journals awaiting recovery (recovery would
// have to trust the very structures that failed verification).
func OpenRepair(path string, mem pmem.Options) (*Pool, error) {
	if path == "" {
		return nil, fmt.Errorf("pool: OpenRepair requires a path; use AttachRepair for in-memory pools")
	}
	h, err := readHeader(path)
	if err != nil {
		return nil, err
	}
	dev, err := pmem.OpenFile(path, int(h.size), mem)
	if err != nil {
		return nil, err
	}
	return AttachRepair(dev)
}

// AttachRepair attaches to an image the way Attach does, but follows the
// OpenRepair policy for damaged images: repair from mirrors and
// checksums where possible, degrade to read-only where not.
func AttachRepair(dev *pmem.Device) (*Pool, error) {
	fsckStart := time.Now()
	rep, err := FsckDevice(dev)
	if err != nil {
		return nil, err
	}
	if rep.Clean() {
		fsckSecs := time.Since(fsckStart).Seconds()
		p, err := Attach(dev)
		if err != nil {
			return nil, err
		}
		p.prependRecoveryPhase("fsck", fsckSecs)
		return p, nil
	}
	if rep.Pending && !dirProblemsOnly(rep) {
		// Corruption alongside journals awaiting recovery: rollback and
		// roll-forward would run over the damaged structures and could
		// compound the damage. This combination is not survivable. The
		// one exception is damage confined to the directory slot mirrors:
		// recovery never reads them (the buffer state words are the
		// authority), so rewriting a mirror and then recovering is safe.
		return nil, rep.Err()
	}
	repairStart := time.Now()
	fsckSecs := repairStart.Sub(fsckStart).Seconds()
	repairImage(dev, rep)
	rep, err = FsckDevice(dev)
	if err != nil {
		return nil, err
	}
	repairSecs := time.Since(repairStart).Seconds()
	p, err := Attach(dev)
	if err != nil {
		return nil, err
	}
	// The re-fsck after repair is part of the repair phase: it validates
	// the rewrite before recovery trusts it.
	p.prependRecoveryPhase("repair", repairSecs)
	p.prependRecoveryPhase("fsck", fsckSecs)
	if rep.Clean() {
		return p, nil
	}
	// Unrepairable damage remains: serve reads, refuse writes, and name
	// the condemned ranges.
	p.Degrade(rep.Err().Error())
	for _, r := range quarantineRanges(p.geo, rep.Problems) {
		p.AddQuarantine(r)
	}
	return p, nil
}

// dirProblemsOnly reports whether every problem is a directory slot
// mirror — the one damage class that is safe to repair with journals
// still pending.
func dirProblemsOnly(rep *FsckReport) bool {
	for _, pr := range rep.Problems {
		if pr.Area != AreaJournalDir {
			return false
		}
	}
	return true
}

// repairImage fixes every mirror- or checksum-covered problem in place.
// It must only run when no journal is pending (the journals are idle, so
// nothing races these writes), except for directory slot mirrors, which
// recovery never reads.
func repairImage(dev *pmem.Device, rep *FsckReport) {
	for _, pr := range rep.Problems {
		if !pr.Repairable {
			continue
		}
		switch pr.Area {
		case AreaHeader:
			// One copy failed its checksum; rewrite both from the good one
			// under a fresh sequence number.
			if h, _, _, err := chooseHeader(dev.Bytes()); err == nil {
				h.seq++
				writeHeader(dev, h)
			}
		case AreaRoot:
			repairRootSlots(dev)
		case AreaBitmap:
			g, err := computeGeometryOf(dev)
			if err != nil {
				continue
			}
			meta := g.metaOff + uint64(pr.Index)*alloc.MetaSize(g.arenaHeap)
			heap := g.heapOff + uint64(pr.Index)*g.arenaHeap
			a := alloc.Open(dev, meta, heap, g.arenaHeap)
			a.ScrubChecksums(true)
		case AreaJournalDir:
			g, err := computeGeometryOf(dev)
			if err != nil {
				continue
			}
			journal.RepairSlot(dev, g.dirOff, g.bufOff, g.bufCap, pr.Index)
		}
	}
}

// repairRootSlots mirrors the surviving root slot over a damaged one.
// A no-op when both slots are damaged or both intact.
func repairRootSlots(dev *pmem.Device) bool {
	img := dev.Bytes()
	rootA, typA, okA := decodeRootSlot(img[rootSlotAOff : rootSlotAOff+rootSlotSize])
	rootB, typB, okB := decodeRootSlot(img[rootSlotBOff : rootSlotBOff+rootSlotSize])
	if okA == okB {
		return false
	}
	root, typ := rootA, typA
	target := uint64(rootSlotBOff)
	if okB {
		root, typ = rootB, typB
		target = rootSlotAOff
	}
	var slot [rootSlotSize]byte
	encodeRootSlot(slot[:], root, typ)
	dev.Write(target, slot[:])
	dev.Persist(target, rootSlotSize)
	return true
}

// computeGeometryOf rebuilds the geometry from an image's header.
func computeGeometryOf(dev *pmem.Device) (geometry, error) {
	h, _, _, err := chooseHeader(dev.Bytes())
	if err != nil {
		return geometry{}, err
	}
	return computeGeometry(int(h.size), int(h.journals), int(h.journalCap))
}

// FlipTargets reports the byte ranges of an image where an at-rest
// bit flip is a fair probe of the self-healing machinery: the static
// header and root region, the journal directory (checksummed slot
// mirrors), each arena's allocator metadata minus its redo-log area,
// and the whole heap span.
//
// Deliberately excluded: journal buffers and allocator redo-log areas —
// an at-rest flip in an unretired log entry is indistinguishable from a
// torn in-flight append, which the torn-write model already covers;
// flipping it at rest would manufacture partial-replay outcomes that no
// real rot pattern produces (logs are transient, rot strikes long-lived
// data).
func FlipTargets(dev *pmem.Device) ([]Range, error) {
	g, err := computeGeometryOf(dev)
	if err != nil {
		return nil, err
	}
	meta := alloc.MetaSize(g.arenaHeap)
	logArea := alloc.LogAreaSize()
	out := []Range{
		{Off: 0, Len: headerSize},
		{Off: g.dirOff, Len: journal.DirSize(g.nJournals)},
	}
	for i := 0; i < g.nJournals; i++ {
		off := g.metaOff + uint64(i)*meta
		out = append(out, Range{Off: off + logArea, Len: meta - logArea})
	}
	out = append(out, Range{Off: g.heapOff, Len: uint64(g.nJournals) * g.arenaHeap})
	return out, nil
}

// quarantineRanges maps unrepairable problems to the byte ranges they
// condemn: a broken arena condemns its metadata and, for readers, its
// heap span; broken root slots condemn the root region.
func quarantineRanges(g geometry, problems []FsckProblem) []Range {
	var out []Range
	for _, pr := range problems {
		if pr.Repairable {
			continue
		}
		switch pr.Area {
		case AreaBitmap:
			meta := g.metaOff + uint64(pr.Index)*alloc.MetaSize(g.arenaHeap)
			heap := g.heapOff + uint64(pr.Index)*g.arenaHeap
			out = append(out,
				Range{Off: meta, Len: alloc.MetaSize(g.arenaHeap)},
				Range{Off: heap, Len: g.arenaHeap})
		case AreaRoot:
			out = append(out, Range{Off: rootSlotAOff, Len: headerSize - rootSlotAOff})
		case AreaJournal:
			out = append(out, Range{Off: g.bufOff + uint64(pr.Index)*g.bufCap, Len: g.bufCap})
		case AreaHeader:
			out = append(out, Range{Off: 0, Len: 2 * headerCopySize})
		}
	}
	return out
}

// ScrubReport summarizes one online scrub pass.
type ScrubReport struct {
	// Arenas is how many allocator arenas were scanned.
	Arenas int
	// Repairs counts mirror copies and checksum slots rewritten.
	Repairs int
	// Problems lists everything found, repaired or not.
	Problems []FsckProblem
	// Quarantined lists ranges condemned by THIS pass (already-known
	// quarantine from open time is not repeated; see Pool.Quarantine).
	Quarantined []Range
}

// Scrub verifies the pool's self-describing metadata on a live pool —
// header mirrors, root slots, and every arena's allocator checksums —
// repairing what mirrors and checksum rewrites cover. It runs
// incrementally: each arena is checked under its own lock, one at a
// time, so transactions on other arenas proceed while it walks.
// Unrepairable damage degrades the pool to read-only and quarantines the
// damaged ranges. The error is non-nil only when such damage was found.
func (p *Pool) Scrub() (*ScrubReport, error) {
	p.scrubRuns.Add(1)
	rep := &ScrubReport{}

	// Header mirrors. p.hdr is the authoritative in-memory copy written
	// at attach; rootMu serializes the rewrite against SetRoot (different
	// region, same discipline) and concurrent scrubs.
	p.rootMu.Lock()
	_, goodA, goodB, err := chooseHeader(p.dev.Bytes())
	if err == nil && (!goodA || !goodB) {
		p.hdr.seq++
		writeHeader(p.dev, p.hdr)
		rep.Repairs++
		rep.Problems = append(rep.Problems, FsckProblem{
			Area: AreaHeader, Index: -1, Repairable: true,
			Detail: "static header copy failed its checksum; rewrote both from memory",
		})
	} else if err != nil {
		// Both copies damaged at once: rewrite from the attached state.
		p.hdr.seq++
		writeHeader(p.dev, p.hdr)
		rep.Repairs++
		rep.Problems = append(rep.Problems, FsckProblem{
			Area: AreaHeader, Index: -1, Repairable: true,
			Detail: "both static header copies failed; rewrote from memory",
		})
	}
	// Root slots: mirror the survivor over a damaged copy.
	if repairRootSlots(p.dev) {
		rep.Repairs++
		rep.Problems = append(rep.Problems, FsckProblem{
			Area: AreaRoot, Index: -1, Repairable: true,
			Detail: "root slot failed its checksum; repaired from mirror",
		})
	}
	if _, _, ok := readRoot(p.dev.Bytes()); !ok {
		rep.Problems = append(rep.Problems, FsckProblem{
			Area: AreaRoot, Index: -1, Repairable: false,
			Detail: "both root slots failed their checksum",
		})
	}
	p.rootMu.Unlock()

	// Journal directory slot mirrors. Each slot is checked with its
	// journal held out of the free list, so no transaction can race the
	// rewrite; busy journals are skipped — their owning transaction
	// rewrites the mirror on its next state transition anyway. Cycling
	// through the FIFO free list visits every currently idle journal.
	seen := make([]bool, p.geo.nJournals)
	checked := 0
dirScan:
	for tries := 0; checked < p.geo.nJournals && tries < 4*p.geo.nJournals; tries++ {
		select {
		case i := <-p.freeJ:
			if !seen[i] {
				seen[i] = true
				checked++
				if !journal.SlotOK(p.dev.Bytes(), p.geo.dirOff, i) {
					journal.RepairSlot(p.dev, p.geo.dirOff, p.geo.bufOff, p.geo.bufCap, i)
					rep.Repairs++
					rep.Problems = append(rep.Problems, FsckProblem{
						Area: AreaJournalDir, Index: i, Repairable: true,
						Detail: "directory slot failed its checksum; rewrote from the buffer state word",
					})
				}
			}
			p.freeJ <- i
		default:
			break dirScan // every remaining journal is running a transaction
		}
	}

	// Arenas, one lock at a time.
	for i, a := range p.arenas {
		rep.Arenas++
		repaired, err := a.ScrubChecksums(true)
		if repaired {
			rep.Repairs++
			rep.Problems = append(rep.Problems, FsckProblem{
				Area: AreaBitmap, Index: i, Repairable: true,
				Detail: "checksum slot mismatch with sound structure; slots rewritten",
			})
		}
		if err != nil {
			rep.Problems = append(rep.Problems, FsckProblem{
				Area: AreaBitmap, Index: i, Repairable: false,
				Detail: err.Error(),
			})
		}
	}

	p.scrubRepairs.Add(uint64(rep.Repairs))
	p.scrubProblems.Add(uint64(len(rep.Problems)))

	var unrepairable []FsckProblem
	for _, pr := range rep.Problems {
		if !pr.Repairable {
			unrepairable = append(unrepairable, pr)
		}
	}
	if len(unrepairable) == 0 {
		return rep, nil
	}
	fr := &FsckReport{Problems: unrepairable}
	rep.Quarantined = quarantineRanges(p.geo, unrepairable)
	p.Degrade(fr.Err().Error())
	for _, r := range rep.Quarantined {
		p.AddQuarantine(r)
	}
	return rep, fr.Err()
}
