package pool

import (
	"fmt"

	"corundum/internal/pmem"
)

// ReadView is a lock-free window onto the pool's device for seqlock-style
// optimistic readers. Unlike a Transaction it takes no journal slot, no
// pool mutex, and no lock at all: Load is a single bounds-checked atomic
// word load. The caller owns correctness — it must bracket its reads
// with a commit-sequence check (the server's shard seqlock) and treat
// any CRC mismatch or implausible pointer as a possible in-flight
// mutation, retrying or falling back to a locked Transaction which
// adjudicates. Degraded (read-only) pools still serve views: reads of
// intact data are exactly what degraded mode preserves, and damage is
// surfaced by the same checksums either way.
type ReadView struct {
	buf  []byte
	size uint64
}

// ReadView returns the pool's lock-free read view. It fails only on a
// closed pool; the view stays valid until Close (the device buffer is
// never reallocated while the pool is open).
func (p *Pool) ReadView() (*ReadView, error) {
	p.mu.RLock()
	open := p.open
	p.mu.RUnlock()
	if !open {
		return nil, fmt.Errorf("%w: no read view", ErrClosed)
	}
	buf := p.dev.Bytes()
	return &ReadView{buf: buf, size: uint64(len(buf))}, nil
}

// Size is the pool's device size in bytes (the view's addressable range).
func (v *ReadView) Size() uint64 { return v.size }

// Load returns the little-endian word at off, or ok=false when off is
// out of bounds or not word-aligned — a malformed pointer chased off a
// mid-mutation chain, which the seqlock reader must treat as a conflict,
// never as data. Aligned in-bounds loads are word-atomic, so a racing
// committer store can make the value stale or inconsistent but never
// torn.
func (v *ReadView) Load(off uint64) (val uint64, ok bool) {
	if off%pmem.WordSize != 0 || off+pmem.WordSize > v.size {
		return 0, false
	}
	return pmem.LoadWord(v.buf, off), true
}
