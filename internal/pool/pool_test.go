package pool

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"corundum/internal/journal"
	"corundum/internal/pmem"
)

func testConfig() Config {
	return Config{
		Size:       8 << 20,
		Journals:   4,
		JournalCap: 64 << 10,
		Mem:        pmem.Options{TrackCrash: true},
	}
}

func newPool(t *testing.T) *Pool {
	t.Helper()
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// crashAndReattach simulates a machine crash and reboot for an in-memory pool.
func crashAndReattach(t *testing.T, p *Pool) *Pool {
	t.Helper()
	p.Device().Crash()
	p2, err := Attach(p.Device())
	if err != nil {
		t.Fatal(err)
	}
	return p2
}

func (p *Pool) write8(off, val uint64) {
	binary.LittleEndian.PutUint64(p.dev.Bytes()[off:], val)
}

func (p *Pool) read8(off uint64) uint64 {
	return binary.LittleEndian.Uint64(p.dev.Bytes()[off:])
}

func TestCreateAndBasicTransaction(t *testing.T) {
	p := newPool(t)
	var cell uint64
	err := p.Transaction(func(j *journal.Journal) error {
		var err error
		cell, err = j.Alloc(8)
		if err != nil {
			return err
		}
		p.write8(cell, 77)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.read8(cell); got != 77 {
		t.Fatalf("got %d, want 77", got)
	}
}

func TestTransactionErrorRollsBack(t *testing.T) {
	p := newPool(t)
	var cell uint64
	if err := p.Transaction(func(j *journal.Journal) error {
		var err error
		cell, err = j.Alloc(8)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	p.write8(cell, 5)
	p.Device().MarkDirty(cell, 8)
	p.Device().Persist(cell, 8)

	boom := errors.New("boom")
	err := p.Transaction(func(j *journal.Journal) error {
		if err := j.DataLog(cell, 8); err != nil {
			return err
		}
		p.write8(cell, 6)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if got := p.read8(cell); got != 5 {
		t.Fatalf("value after failed tx = %d, want 5", got)
	}
}

func TestTransactionPanicRollsBackAndRepanics(t *testing.T) {
	p := newPool(t)
	var cell uint64
	if err := p.Transaction(func(j *journal.Journal) error {
		var err error
		cell, err = j.Alloc(8)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	p.write8(cell, 1)
	p.Device().MarkDirty(cell, 8)
	p.Device().Persist(cell, 8)

	func() {
		defer func() {
			if r := recover(); r != "kaboom" {
				t.Fatalf("recovered %v, want kaboom", r)
			}
		}()
		_ = p.Transaction(func(j *journal.Journal) error {
			if err := j.DataLog(cell, 8); err != nil {
				return err
			}
			p.write8(cell, 2)
			panic("kaboom")
		})
	}()
	if got := p.read8(cell); got != 1 {
		t.Fatalf("value after panicked tx = %d, want 1", got)
	}
	// The journal must have been released: another tx must not block.
	if err := p.Transaction(func(*journal.Journal) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestNestedTransactionsFlattenAcrossCalls(t *testing.T) {
	p := newPool(t)
	var cell uint64
	err := p.Transaction(func(j *journal.Journal) error {
		var err error
		cell, err = j.Alloc(8)
		if err != nil {
			return err
		}
		p.write8(cell, 1)
		return p.Transaction(func(j2 *journal.Journal) error {
			if j2 != j {
				t.Error("nested transaction got a different journal")
			}
			if err := j2.DataLog(cell, 8); err != nil {
				return err
			}
			p.write8(cell, 2)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.read8(cell); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestNestedAbortAbortsOuter(t *testing.T) {
	p := newPool(t)
	var cell uint64
	if err := p.Transaction(func(j *journal.Journal) error {
		var err error
		cell, err = j.Alloc(8)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	p.write8(cell, 10)
	p.Device().MarkDirty(cell, 8)
	p.Device().Persist(cell, 8)

	boom := errors.New("inner boom")
	err := p.Transaction(func(j *journal.Journal) error {
		if err := j.DataLog(cell, 8); err != nil {
			return err
		}
		p.write8(cell, 11)
		if err := p.Transaction(func(*journal.Journal) error { return boom }); err != nil {
			return err
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := p.read8(cell); got != 10 {
		t.Fatalf("outer updates survived inner abort: %d", got)
	}
}

func TestConcurrentTransactionsUseDistinctJournals(t *testing.T) {
	p := newPool(t)
	const workers = 8
	const rounds = 50
	cells := make([]uint64, workers)
	for i := range cells {
		i := i
		if err := p.Transaction(func(j *journal.Journal) error {
			var err error
			cells[i], err = j.Alloc(8)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				err := p.Transaction(func(j *journal.Journal) error {
					if err := j.DataLog(cells[w], 8); err != nil {
						return err
					}
					p.write8(cells[w], p.read8(cells[w])+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range cells {
		if got := p.read8(cells[w]); got != rounds {
			t.Fatalf("worker %d cell = %d, want %d", w, got, rounds)
		}
	}
}

func TestRootSetAndRecovered(t *testing.T) {
	p := newPool(t)
	var root uint64
	err := p.Transaction(func(j *journal.Journal) error {
		var err error
		root, err = j.Alloc(64)
		if err != nil {
			return err
		}
		return p.SetRoot(j, root, 0xDEAD)
	})
	if err != nil {
		t.Fatal(err)
	}
	p2 := crashAndReattach(t, p)
	if got := p2.RootOff(); got != root {
		t.Fatalf("root after crash = %#x, want %#x", got, root)
	}
	if got := p2.RootTypeHash(); got != 0xDEAD {
		t.Fatalf("root type hash = %#x", got)
	}
}

func TestRootSetRolledBackOnCrash(t *testing.T) {
	p := newPool(t)
	// Crash mid-transaction: SetRoot and the allocation must both vanish.
	dev := p.Device()
	var count int
	dev.SetFaultInjector(func(op pmem.Op) bool {
		count++
		return count == 40 // somewhere inside the tx
	})
	func() {
		defer func() { recover() }()
		_ = p.Transaction(func(j *journal.Journal) error {
			off, err := j.Alloc(64)
			if err != nil {
				return err
			}
			return p.SetRoot(j, off, 1)
		})
	}()
	dev.SetFaultInjector(nil)
	p2 := crashAndReattach(t, p)
	if got := p2.RootOff(); got != 0 {
		t.Fatalf("root leaked from aborted tx: %#x", got)
	}
	if p2.InUse() != 0 {
		t.Fatalf("allocation leaked: %d bytes in use", p2.InUse())
	}
}

func TestClosedPoolRejectsTransactions(t *testing.T) {
	p := newPool(t)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	err := p.Transaction(func(*journal.Journal) error { return nil })
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close err = %v, want ErrClosed", err)
	}
}

func TestGenerationBumpsOnReopen(t *testing.T) {
	p := newPool(t)
	g1 := p.Generation()
	p2 := crashAndReattach(t, p)
	if p2.Generation() <= g1 {
		t.Fatalf("generation did not advance: %d -> %d", g1, p2.Generation())
	}
}

func TestFilePoolRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.pool")
	cfg := testConfig()
	p, err := Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cell uint64
	if err := p.Transaction(func(j *journal.Journal) error {
		var err error
		cell, err = j.AllocInit([]byte("durable!"))
		if err != nil {
			return err
		}
		return p.SetRoot(j, cell, 7)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	off := p2.RootOff()
	if got := string(p2.Device().Bytes()[off : off+8]); got != "durable!" {
		t.Fatalf("reloaded %q", got)
	}
}

func TestOpenRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeJunk(path, 1<<16); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, pmem.Options{}); !errors.Is(err, ErrNotAPool) {
		t.Fatalf("err = %v, want ErrNotAPool", err)
	}
}

func TestTooSmallConfigRejected(t *testing.T) {
	_, err := Create("", Config{Size: 4096, Journals: 4, JournalCap: 1 << 20})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestInTransaction(t *testing.T) {
	p := newPool(t)
	if _, ok := p.InTransaction(); ok {
		t.Fatal("InTransaction true outside any tx")
	}
	err := p.Transaction(func(j *journal.Journal) error {
		got, ok := p.InTransaction()
		if !ok || got != j {
			t.Error("InTransaction did not see the active journal")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArenaRoutingAcrossJournals(t *testing.T) {
	p := newPool(t)
	// Allocate from one arena, free from a transaction that happens to use
	// a different journal: the pool must route the free to the owner arena.
	var off uint64
	if err := p.Transaction(func(j *journal.Journal) error {
		var err error
		off, err = j.Alloc(128)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	inUse := p.InUse()
	if err := p.Transaction(func(j *journal.Journal) error {
		return j.DropLog(off, 128)
	}); err != nil {
		t.Fatal(err)
	}
	if got := p.InUse(); got != inUse-128 {
		t.Fatalf("in use = %d, want %d", got, inUse-128)
	}
}

func writeJunk(path string, n int) error {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return writeFileHelper(path, buf)
}

func writeFileHelper(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestConfigFloors(t *testing.T) {
	p, err := Create("", Config{Size: 8 << 20, Journals: -3, JournalCap: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.Journals() != 16 {
		t.Fatalf("journals = %d, want default 16", p.Journals())
	}
	// A tiny JournalCap must have been floored: a transaction logging a
	// few hundred bytes works without chaining issues.
	if err := p.Transaction(func(j *journal.Journal) error {
		off, err := j.Alloc(256)
		if err != nil {
			return err
		}
		return j.DataLog(off, 256)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryCountersAndJournalOccupancy covers the status surface the
// server's INFO command reports: JournalsFree tracks the free-list, and
// Recovery() reflects what journal.Recover did at the last attach.
func TestRecoveryCountersAndJournalOccupancy(t *testing.T) {
	p := newPool(t)
	if free := p.JournalsFree(); free != p.Journals() {
		t.Fatalf("fresh pool: %d/%d journals free", free, p.Journals())
	}
	if rb, rf := p.Recovery(); rb != 0 || rf != 0 {
		t.Fatalf("fresh pool reports recovery %d/%d", rb, rf)
	}
	inTx := -1
	if err := p.Transaction(func(j *journal.Journal) error {
		inTx = p.JournalsFree()
		_, err := j.Alloc(8)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if inTx != p.Journals()-1 {
		t.Fatalf("in-tx journals free = %d, want %d", inTx, p.Journals()-1)
	}
	if free := p.JournalsFree(); free != p.Journals() {
		t.Fatalf("after tx: %d/%d journals free", free, p.Journals())
	}

	// Crash mid-transaction at progressively later device operations until
	// the cut lands after the journal became durable: that reattach must
	// report exactly one interrupted journal recovered.
	payload := make([]byte, 256)
	for crashAt := 10; crashAt < 2000; crashAt += 10 {
		dev := p.Device()
		var count int
		dev.SetFaultInjector(func(op pmem.Op) bool {
			count++
			return count == crashAt
		})
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					crashed = true
				}
			}()
			_ = p.Transaction(func(j *journal.Journal) error {
				for i := 0; i < 8; i++ {
					if _, err := j.AllocInit(payload); err != nil {
						return err
					}
				}
				return nil
			})
		}()
		dev.SetFaultInjector(nil)
		if !crashed {
			t.Fatalf("crash point %d never fired; transaction uses fewer device ops", crashAt)
		}
		p = crashAndReattach(t, p)
		rb, rf := p.Recovery()
		if rb+rf > 1 {
			t.Fatalf("crash at %d: recovery handled %d+%d journals, one tx was in flight", crashAt, rb, rf)
		}
		if free := p.JournalsFree(); free != p.Journals() {
			t.Fatalf("crash at %d: %d/%d journals free after recovery", crashAt, free, p.Journals())
		}
		if rb+rf == 1 {
			return // observed a real recovery — done
		}
	}
	t.Fatal("no crash point produced a recoverable journal")
}
