package pool

import (
	"encoding/binary"
	"fmt"

	"corundum/internal/alloc"
	"corundum/internal/pmem"
)

// Report is a structural description of a pool image, produced without
// running recovery — what corundum-fsck prints. It is safe on a crashed
// image: nothing is written.
type Report struct {
	Size        int
	Generation  uint64
	RootOff     uint64
	RootType    uint64
	Journals    int
	JournalCap  int
	ArenaHeap   uint64
	Arenas      []ArenaReport
	JournalInfo []JournalReport
	// Errors collects structural problems; empty means the image is
	// consistent (pending journals are not errors — recovery handles them).
	Errors []string
}

// ArenaReport summarizes one allocator arena.
type ArenaReport struct {
	Index     int
	InUse     uint64
	FreeBytes uint64
	RedoLog   string // "clean" or "committed (will replay)"
	Err       string // structural inconsistency, if any
}

// JournalReport summarizes one journal slot.
type JournalReport struct {
	Index   int
	State   string // idle | running (will roll back) | committing (will roll forward)
	Epoch   uint64
	Entries int
}

// Inspect reads the pool file at path and returns its structural report.
func Inspect(path string) (*Report, error) {
	h, err := readHeader(path)
	if err != nil {
		return nil, err
	}
	dev, err := pmem.OpenFile(path, int(h.size), pmem.Options{})
	if err != nil {
		return nil, err
	}
	return InspectDevice(dev)
}

// InspectDevice inspects an already-loaded pool image.
func InspectDevice(dev *pmem.Device) (*Report, error) {
	h, goodA, goodB, err := chooseHeader(dev.Bytes())
	if err != nil {
		return nil, err
	}
	if h.version != formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrWrongVersion, h.version)
	}
	root, rootType, rootOK := readRoot(dev.Bytes())
	r := &Report{
		Size:       int(h.size),
		Generation: h.generation,
		RootOff:    root,
		RootType:   rootType,
		Journals:   int(h.journals),
		JournalCap: int(h.journalCap),
		ArenaHeap:  h.arenaHeap,
	}
	if !goodA || !goodB {
		r.Errors = append(r.Errors, "one static header copy failed its checksum (mirror intact)")
	}
	if !rootOK {
		r.Errors = append(r.Errors, "both root slots failed their checksum")
	}
	if r.Size != dev.Size() {
		r.Errors = append(r.Errors, fmt.Sprintf("header size %d != image size %d", r.Size, dev.Size()))
		return r, nil
	}
	g, err := computeGeometry(r.Size, r.Journals, r.JournalCap)
	if err != nil {
		r.Errors = append(r.Errors, "geometry: "+err.Error())
		return r, nil
	}
	if g.arenaHeap != r.ArenaHeap {
		r.Errors = append(r.Errors, fmt.Sprintf("computed arena heap %d != recorded %d", g.arenaHeap, r.ArenaHeap))
		return r, nil
	}

	for i := 0; i < r.Journals; i++ {
		bOff := g.bufOff + uint64(i)*g.bufCap
		word := binary.LittleEndian.Uint64(dev.Bytes()[bOff:])
		jr := JournalReport{Index: i, Epoch: word >> 8}
		switch byte(word) {
		case 0:
			jr.State = "idle"
		case 1:
			jr.State = "running (will roll back)"
		case 2:
			jr.State = "committing (will roll forward)"
		default:
			jr.State = fmt.Sprintf("corrupt (%d)", byte(word))
			r.Errors = append(r.Errors, fmt.Sprintf("journal %d: invalid state byte %d", i, byte(word)))
		}
		r.JournalInfo = append(r.JournalInfo, jr)
	}

	for i := 0; i < r.Journals; i++ {
		meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
		heap := g.heapOff + uint64(i)*g.arenaHeap
		ar := ArenaReport{Index: i, RedoLog: "clean"}
		if binary.LittleEndian.Uint64(dev.Bytes()[meta:]) != 0 {
			ar.RedoLog = "committed (will replay)"
		}
		if err := alloc.Validate(dev, meta, heap, g.arenaHeap); err != nil {
			ar.Err = err.Error()
			r.Errors = append(r.Errors, fmt.Sprintf("arena %d: %v", i, err))
			r.Arenas = append(r.Arenas, ar)
			continue
		}
		// Opening replays a committed redo log; inspect a scratch copy so
		// fsck stays read-only.
		scratch := pmem.New(dev.Size(), pmem.Options{})
		copy(scratch.Bytes(), dev.Bytes())
		a := alloc.Open(scratch, meta, heap, g.arenaHeap)
		ar.InUse = a.InUse()
		ar.FreeBytes = a.FreeBytes()
		if err := a.CheckConsistency(); err != nil {
			ar.Err = err.Error()
			r.Errors = append(r.Errors, fmt.Sprintf("arena %d: %v", i, err))
		}
		r.Arenas = append(r.Arenas, ar)
	}

	if r.RootOff != 0 {
		inAnyArena := false
		for i := 0; i < r.Journals; i++ {
			start := g.heapOff + uint64(i)*g.arenaHeap
			if r.RootOff >= start && r.RootOff < start+g.arenaHeap {
				inAnyArena = true
			}
		}
		if !inAnyArena {
			r.Errors = append(r.Errors, fmt.Sprintf("root offset %#x outside every arena heap", r.RootOff))
		}
	}
	return r, nil
}
