package pool

import (
	"encoding/binary"
	"fmt"
	"strings"

	"corundum/internal/alloc"
	"corundum/internal/pmem"
)

// Report is a structural description of a pool image, produced without
// running recovery — what corundum-fsck prints. It is safe on a crashed
// image: nothing is written.
type Report struct {
	Size        int
	Generation  uint64
	RootOff     uint64
	RootType    uint64
	Journals    int
	JournalCap  int
	ArenaHeap   uint64
	Arenas      []ArenaReport
	JournalInfo []JournalReport
	// Errors collects structural problems; empty means the image is
	// consistent (pending journals are not errors — recovery handles them).
	Errors []string
}

// ArenaReport summarizes one allocator arena.
type ArenaReport struct {
	Index     int
	InUse     uint64
	FreeBytes uint64
	RedoLog   string // "clean" or "committed (will replay)"
	Err       string // structural inconsistency, if any
}

// JournalReport summarizes one journal slot.
type JournalReport struct {
	Index   int
	State   string // idle | running (will roll back) | committing (will roll forward)
	Epoch   uint64
	Entries int
}

// Fsck is the cheap structural pass Open runs before recovery: header
// sanity, geometry, journal state bytes, and — when every journal is
// idle — per-arena allocator metadata (alloc.Validate, no redo replay,
// nothing written) and the root offset landing inside an arena. Pending
// journals and committed redo logs are NOT errors, and with a pending
// journal the allocator/root checks are skipped entirely: a crash can
// durably expose in-place mutations whose undo records recovery will
// apply. Fsck rejects only images recovery could misinterpret. It returns nil for a healthy image and an
// ErrCorrupt-wrapped diagnostic naming every problem otherwise.
func Fsck(dev *pmem.Device) error {
	hdr := dev.Bytes()[:headerSize]
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(hdr[off:]) }
	if get(hdrMagic) != magic {
		return ErrNotAPool
	}
	if get(hdrVersion) != formatVersion {
		return fmt.Errorf("%w: %d", ErrWrongVersion, get(hdrVersion))
	}
	var problems []string
	size := int(get(hdrSize))
	nJournals := int(get(hdrJournals))
	journalCap := int(get(hdrJournalCap))
	if size != dev.Size() {
		return fmt.Errorf("%w: header size %d != image size %d", ErrCorrupt, size, dev.Size())
	}
	g, err := computeGeometry(size, nJournals, journalCap)
	if err != nil {
		return fmt.Errorf("%w: geometry: %v", ErrCorrupt, err)
	}
	if g.arenaHeap != get(hdrArenaHeap) {
		return fmt.Errorf("%w: computed arena heap %d != recorded %d", ErrCorrupt, g.arenaHeap, get(hdrArenaHeap))
	}
	pending := false
	for i := 0; i < nJournals; i++ {
		word := binary.LittleEndian.Uint64(dev.Bytes()[g.bufOff+uint64(i)*g.bufCap:])
		switch s := byte(word); {
		case s > 2:
			problems = append(problems, fmt.Sprintf("journal %d: invalid state byte %d", i, s))
		case s != 0: // 0 = idle; 1 running / 2 committing mean recovery has work
			pending = true
		}
	}
	// Allocator metadata and the root pointer are only required to be
	// consistent when no journal is pending. A crash mid-transaction —
	// especially with adversarial cache eviction — can durably expose an
	// in-place mutation (e.g. a block-map byte) whose undo record sits in a
	// pending journal; recovery rolls it back, so refusing such an image
	// here would reject a legitimately recoverable pool.
	if !pending {
		for i := 0; i < nJournals; i++ {
			meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
			heap := g.heapOff + uint64(i)*g.arenaHeap
			if err := alloc.Validate(dev, meta, heap, g.arenaHeap); err != nil {
				problems = append(problems, fmt.Sprintf("arena %d: %v", i, err))
			}
		}
		if root := get(hdrRoot); root != 0 {
			if root < g.heapOff || root >= g.heapOff+uint64(nJournals)*g.arenaHeap {
				problems = append(problems, fmt.Sprintf("root offset %#x outside every arena heap", root))
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("%w: %s", ErrCorrupt, strings.Join(problems, "; "))
	}
	return nil
}

// Inspect reads the pool file at path and returns its structural report.
func Inspect(path string) (*Report, error) {
	raw, err := readHeader(path)
	if err != nil {
		return nil, err
	}
	size := int(binary.LittleEndian.Uint64(raw[hdrSize:]))
	dev, err := pmem.OpenFile(path, size, pmem.Options{})
	if err != nil {
		return nil, err
	}
	return InspectDevice(dev)
}

// InspectDevice inspects an already-loaded pool image.
func InspectDevice(dev *pmem.Device) (*Report, error) {
	hdr := dev.Bytes()[:headerSize]
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(hdr[off:]) }
	if get(hdrMagic) != magic {
		return nil, ErrNotAPool
	}
	if get(hdrVersion) != formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrWrongVersion, get(hdrVersion))
	}
	r := &Report{
		Size:       int(get(hdrSize)),
		Generation: get(hdrGeneration),
		RootOff:    get(hdrRoot),
		RootType:   get(hdrRootType),
		Journals:   int(get(hdrJournals)),
		JournalCap: int(get(hdrJournalCap)),
		ArenaHeap:  get(hdrArenaHeap),
	}
	if r.Size != dev.Size() {
		r.Errors = append(r.Errors, fmt.Sprintf("header size %d != image size %d", r.Size, dev.Size()))
		return r, nil
	}
	g, err := computeGeometry(r.Size, r.Journals, r.JournalCap)
	if err != nil {
		r.Errors = append(r.Errors, "geometry: "+err.Error())
		return r, nil
	}
	if g.arenaHeap != r.ArenaHeap {
		r.Errors = append(r.Errors, fmt.Sprintf("computed arena heap %d != recorded %d", g.arenaHeap, r.ArenaHeap))
		return r, nil
	}

	for i := 0; i < r.Journals; i++ {
		bOff := g.bufOff + uint64(i)*g.bufCap
		word := binary.LittleEndian.Uint64(dev.Bytes()[bOff:])
		jr := JournalReport{Index: i, Epoch: word >> 8}
		switch byte(word) {
		case 0:
			jr.State = "idle"
		case 1:
			jr.State = "running (will roll back)"
		case 2:
			jr.State = "committing (will roll forward)"
		default:
			jr.State = fmt.Sprintf("corrupt (%d)", byte(word))
			r.Errors = append(r.Errors, fmt.Sprintf("journal %d: invalid state byte %d", i, byte(word)))
		}
		r.JournalInfo = append(r.JournalInfo, jr)
	}

	for i := 0; i < r.Journals; i++ {
		meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
		heap := g.heapOff + uint64(i)*g.arenaHeap
		ar := ArenaReport{Index: i, RedoLog: "clean"}
		if binary.LittleEndian.Uint64(dev.Bytes()[meta:]) != 0 {
			ar.RedoLog = "committed (will replay)"
		}
		if err := alloc.Validate(dev, meta, heap, g.arenaHeap); err != nil {
			ar.Err = err.Error()
			r.Errors = append(r.Errors, fmt.Sprintf("arena %d: %v", i, err))
			r.Arenas = append(r.Arenas, ar)
			continue
		}
		// Opening replays a committed redo log; inspect a scratch copy so
		// fsck stays read-only.
		scratch := pmem.New(dev.Size(), pmem.Options{})
		copy(scratch.Bytes(), dev.Bytes())
		a := alloc.Open(scratch, meta, heap, g.arenaHeap)
		ar.InUse = a.InUse()
		ar.FreeBytes = a.FreeBytes()
		if err := a.CheckConsistency(); err != nil {
			ar.Err = err.Error()
			r.Errors = append(r.Errors, fmt.Sprintf("arena %d: %v", i, err))
		}
		r.Arenas = append(r.Arenas, ar)
	}

	if r.RootOff != 0 {
		inAnyArena := false
		for i := 0; i < r.Journals; i++ {
			start := g.heapOff + uint64(i)*g.arenaHeap
			if r.RootOff >= start && r.RootOff < start+g.arenaHeap {
				inAnyArena = true
			}
		}
		if !inAnyArena {
			r.Errors = append(r.Errors, fmt.Sprintf("root offset %#x outside every arena heap", r.RootOff))
		}
	}
	return r, nil
}
