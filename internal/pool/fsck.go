package pool

import (
	"encoding/binary"
	"fmt"
	"strings"

	"corundum/internal/alloc"
	"corundum/internal/journal"
	"corundum/internal/pmem"
)

// FsckArea names which pool structure a problem was found in.
type FsckArea string

const (
	AreaHeader     FsckArea = "header"      // static header copies
	AreaRoot       FsckArea = "root"        // mirrored root slots
	AreaJournal    FsckArea = "journal"     // journal state machinery
	AreaJournalDir FsckArea = "journal-dir" // checksummed directory slot mirrors
	AreaBitmap     FsckArea = "bitmap"      // allocator free lists / order map / checksums
	AreaHeap       FsckArea = "heap"        // user data backed by a condemned arena
)

// FsckProblem is one structural defect found in a pool image.
type FsckProblem struct {
	Area FsckArea
	// Index is the arena or journal the problem belongs to, -1 for
	// pool-global structures (header, root).
	Index int
	// Detail is a human-readable diagnosis.
	Detail string
	// Repairable reports that a mirror copy or checksum rewrite can fix
	// the damage without losing data (AttachRepair and Scrub do so).
	Repairable bool
}

func (p FsckProblem) String() string {
	where := string(p.Area)
	if p.Index >= 0 {
		where = fmt.Sprintf("%s %d", p.Area, p.Index)
	}
	state := "unrepairable"
	if p.Repairable {
		state = "repairable"
	}
	return fmt.Sprintf("%s: %s (%s)", where, p.Detail, state)
}

// FsckReport is the typed result of a structural check. A clean image has
// no problems; Pending flags journals awaiting recovery (not an error —
// with pending journals the allocator and root checks are skipped, since
// recovery may legitimately need to roll in-place mutations back first).
type FsckReport struct {
	Pending  bool
	Problems []FsckProblem
}

// Clean reports a problem-free image.
func (r *FsckReport) Clean() bool { return len(r.Problems) == 0 }

// Repairable reports whether every problem found can be repaired in
// place from mirrors and checksums. False for a clean report's negation
// use — call Clean first.
func (r *FsckReport) Repairable() bool {
	for _, p := range r.Problems {
		if !p.Repairable {
			return false
		}
	}
	return true
}

// Err folds the report into an error: nil when clean, an
// ErrCorrupt-wrapped list of every problem otherwise.
func (r *FsckReport) Err() error {
	if r.Clean() {
		return nil
	}
	msgs := make([]string, len(r.Problems))
	for i, p := range r.Problems {
		msgs[i] = p.String()
	}
	return fmt.Errorf("%w: %s", ErrCorrupt, strings.Join(msgs, "; "))
}

// Fsck is the cheap structural pass Open runs before recovery. It returns
// nil for a healthy image and an ErrCorrupt-wrapped diagnostic naming
// every problem otherwise. FsckDevice returns the same findings typed.
func Fsck(dev *pmem.Device) error {
	r, err := FsckDevice(dev)
	if err != nil {
		return err
	}
	return r.Err()
}

// FsckDevice runs the structural check over an image read-only: header
// mirrors, geometry, journal state bytes, and — when every journal is
// idle — per-arena allocator metadata (structure and checksums) plus the
// root slots. The returned error is reserved for images that cannot even
// be parsed (not a pool, wrong version, broken geometry); everything
// else, repairable or not, lands in the report.
func FsckDevice(dev *pmem.Device) (*FsckReport, error) {
	r := &FsckReport{}
	h, goodA, goodB, err := chooseHeader(dev.Bytes())
	if err != nil {
		return nil, err
	}
	if h.version != formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrWrongVersion, h.version)
	}
	if !goodA || !goodB {
		bad := "A"
		if !goodB {
			bad = "B"
		}
		r.Problems = append(r.Problems, FsckProblem{
			Area: AreaHeader, Index: -1, Repairable: true,
			Detail: fmt.Sprintf("static header copy %s failed its checksum; mirror is intact", bad),
		})
	}
	if int(h.size) != dev.Size() {
		return nil, fmt.Errorf("%w: header size %d != image size %d", ErrCorrupt, h.size, dev.Size())
	}
	g, err := computeGeometry(int(h.size), int(h.journals), int(h.journalCap))
	if err != nil {
		return nil, fmt.Errorf("%w: geometry: %v", ErrCorrupt, err)
	}
	if g.arenaHeap != h.arenaHeap {
		return nil, fmt.Errorf("%w: computed arena heap %d != recorded %d", ErrCorrupt, g.arenaHeap, h.arenaHeap)
	}
	for i := 0; i < g.nJournals; i++ {
		word := binary.LittleEndian.Uint64(dev.Bytes()[g.bufOff+uint64(i)*g.bufCap:])
		switch s := byte(word); {
		case s > 2:
			// An impossible state byte: recovery cannot know whether a
			// transaction was in flight, so nothing can repair this.
			r.Problems = append(r.Problems, FsckProblem{
				Area: AreaJournal, Index: i, Repairable: false,
				Detail: fmt.Sprintf("invalid state byte %d", s),
			})
		case s != 0: // 0 = idle; 1 running / 2 committing mean recovery has work
			r.Pending = true
		}
	}
	// Directory slot mirrors: each is a checksummed single-word echo of
	// its journal's state word, plus zero padding. Only internal
	// consistency is checked — the mirror is lazy, so a stale-but-valid
	// value is a legitimate post-crash state — which means a failure here
	// is at-rest damage, repairable from the buffer word (the authority).
	for i := 0; i < g.nJournals; i++ {
		if !journal.SlotOK(dev.Bytes(), g.dirOff, i) {
			r.Problems = append(r.Problems, FsckProblem{
				Area: AreaJournalDir, Index: i, Repairable: true,
				Detail: "directory slot failed its checksum; buffer state word is authoritative",
			})
		}
	}
	// Allocator metadata and the root pointer are only required to be
	// consistent when no journal is pending. A crash mid-transaction —
	// especially with adversarial cache eviction — can durably expose an
	// in-place mutation (e.g. a block-map byte) whose undo record sits in
	// a pending journal; recovery rolls it back, so condemning such an
	// image here would reject a legitimately recoverable pool.
	if !r.Pending {
		for i := 0; i < g.nJournals; i++ {
			meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
			heap := g.heapOff + uint64(i)*g.arenaHeap
			structural := alloc.Validate(dev, meta, heap, g.arenaHeap)
			if structural != nil {
				r.Problems = append(r.Problems, FsckProblem{
					Area: AreaBitmap, Index: i, Repairable: false,
					Detail: structural.Error(),
				})
				continue
			}
			if err := alloc.VerifyChecksums(dev, meta, heap, g.arenaHeap); err != nil {
				// The structure itself walks clean, so the stale side is
				// the checksum slot: a repairing scrub rewrites it.
				r.Problems = append(r.Problems, FsckProblem{
					Area: AreaBitmap, Index: i, Repairable: true,
					Detail: err.Error(),
				})
			}
		}
		_, _, okA := decodeRootSlot(dev.Bytes()[rootSlotAOff : rootSlotAOff+rootSlotSize])
		_, _, okB := decodeRootSlot(dev.Bytes()[rootSlotBOff : rootSlotBOff+rootSlotSize])
		switch {
		case !okA && !okB:
			r.Problems = append(r.Problems, FsckProblem{
				Area: AreaRoot, Index: -1, Repairable: false,
				Detail: "both root slots failed their checksum",
			})
		case !okA || !okB:
			bad := "A"
			if !okB {
				bad = "B"
			}
			r.Problems = append(r.Problems, FsckProblem{
				Area: AreaRoot, Index: -1, Repairable: true,
				Detail: fmt.Sprintf("root slot %s failed its checksum; mirror is intact", bad),
			})
		}
		if root, _, ok := readRoot(dev.Bytes()); ok && root != 0 {
			if root < g.heapOff || root >= g.heapOff+uint64(g.nJournals)*g.arenaHeap {
				r.Problems = append(r.Problems, FsckProblem{
					Area: AreaRoot, Index: -1, Repairable: false,
					Detail: fmt.Sprintf("root offset %#x outside every arena heap", root),
				})
			}
		}
	}
	return r, nil
}
