// Package pool implements Corundum's persistent memory pools: a PM-backed
// file holding metadata, a root pointer, journals, and a sharded
// crash-atomic heap. A pool is self-contained — every offset stored inside
// it refers to the same pool — and carries a generation number that
// invalidates volatile weak pointers across close/reopen cycles.
package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"corundum/internal/alloc"
	"corundum/internal/journal"
	"corundum/internal/pmem"
)

const (
	magic = 0x434F52554E44554D // "CORUNDUM"
	// formatVersion 2 introduced the mirrored static header and root
	// slots (see header.go); 3 added the per-arena slab ledger to the
	// allocator metadata region (see alloc/slab.go), which moves every
	// arena boundary. Older pools are refused.
	formatVersion = 3
)

// Pool state errors.
var (
	ErrClosed       = errors.New("pool: pool is closed")
	ErrNotAPool     = errors.New("pool: file is not a Corundum pool")
	ErrWrongVersion = errors.New("pool: incompatible format version")
	ErrWrongRoot    = errors.New("pool: root type differs from the one the pool was created with")
	ErrNoSpace      = errors.New("pool: size too small for the requested configuration")
	// ErrBusy reports that every journal slot was in use for longer than
	// the configured acquire timeout (SetAcquireTimeout). The transaction
	// never began, so retrying is always safe; serving layers surface it
	// as a retryable backpressure signal instead of blocking forever.
	ErrBusy = errors.New("pool: all journal slots busy")
	// ErrCorrupt reports that a pool image failed its structural fsck
	// pass; the detail names what is wrong. Open refuses such pools.
	ErrCorrupt = errors.New("pool: image failed structural check")
	// ErrReadOnly reports that the pool is serving in degraded read-only
	// mode (unrepairable corruption was found); mutations are refused
	// while reads of intact data keep working.
	ErrReadOnly = errors.New("pool: degraded read-only mode")
)

// Range names a quarantined byte span of the pool image: a region whose
// owning structure failed verification and could not be repaired.
type Range struct {
	Off, Len uint64
}

// RecoveryPhase is one step of the open-time recovery timeline: a named
// phase and the wall-clock seconds it took. The phases, in order, cover
// the whole span between the process deciding to open a pool and that
// pool accepting transactions — recovery as an observable, phased
// process rather than an opaque startup stall.
type RecoveryPhase struct {
	Name    string
	Seconds float64
}

// Config sizes a pool at creation. The parameters are persisted in the pool
// header, so reopening needs no configuration.
type Config struct {
	// Size is the total pool footprint in bytes (default 64 MiB).
	Size int
	// Journals is the number of journal slots and heap arenas; it bounds
	// how many transactions run concurrently (default 16).
	Journals int
	// JournalCap is the head log buffer per journal in bytes (default
	// 256 KiB). Transactions that outgrow it chain continuation pages from
	// their arena, so this only tunes how much logging avoids allocation.
	JournalCap int
	// Mem selects latency and crash-tracking behaviour of the device.
	Mem pmem.Options
}

func (c Config) withDefaults() Config {
	if c.Size == 0 {
		c.Size = 64 << 20
	}
	if c.Journals <= 0 {
		c.Journals = 16
	}
	if c.JournalCap == 0 {
		c.JournalCap = 256 << 10
	}
	// The head buffer must hold the state word plus at least one maximal
	// entry and a chain-link reservation; 4 KiB is a comfortable floor.
	if c.JournalCap < 4<<10 {
		c.JournalCap = 4 << 10
	}
	return c
}

// Pool is an open persistent memory pool.
type Pool struct {
	dev      *pmem.Device
	arenas   []*alloc.Buddy
	journals []*journal.Journal
	freeJ    chan int

	heapStart  uint64 // first heap byte (arena 0)
	arenaSpan  uint64 // heap bytes per arena
	generation uint64
	geo        geometry
	hdr        header

	// Degraded read-only mode: set when unrepairable corruption is found
	// (at open by AttachRepair, or later by Scrub). Mutation entry points
	// check Writable; reads of intact data keep working.
	degraded   atomic.Bool
	degradeMu  sync.Mutex
	degradeWhy string
	quarantine []Range

	// Scrub and repair counters (exported via EnableMetrics).
	scrubRuns     atomic.Uint64
	scrubRepairs  atomic.Uint64
	scrubProblems atomic.Uint64

	// rootMu serializes root-slot writers (SetRoot transactions) against
	// scrub-time mirror repair.
	rootMu sync.Mutex

	// Recovery statistics from Attach (zero for freshly created pools).
	recoveredBack int
	recoveredFwd  int

	// recoveryTimeline records how long each phase of the open-time
	// recovery pass took, in order (fsck, repair, heap-open,
	// journal-replay, claim-resolution, publish). Written once during
	// Open/Attach/AttachRepair, read-only afterwards.
	recoveryTimeline []RecoveryPhase

	// acquireTO, when positive (nanoseconds), bounds how long Transaction
	// waits for a free journal slot before failing with ErrBusy.
	acquireTO atomic.Int64

	mu     sync.RWMutex
	open   bool
	active map[uint64]*journal.Journal // goroutine id -> journal (flattening)

	// metrics, when set by EnableMetrics, receives per-transaction
	// observations; atomic so the transaction path never takes mu for it.
	metrics atomic.Pointer[poolMetrics]
}

type geometry struct {
	dirOff, bufOff, bufCap uint64
	nJournals              int
	metaOff, heapOff       uint64
	arenaHeap              uint64
}

func computeGeometry(size, nJournals, journalCap int) (geometry, error) {
	g := geometry{
		dirOff:    headerSize,
		bufOff:    headerSize + journal.DirSize(nJournals),
		bufCap:    uint64(journalCap),
		nJournals: nJournals,
	}
	g.metaOff = g.bufOff + uint64(nJournals*journalCap)
	avail := int64(size) - int64(g.metaOff)
	if avail <= 0 {
		return g, ErrNoSpace
	}
	// Each arena needs MetaSize(h) + h; MetaSize grows ~h/64, so start from
	// an optimistic estimate and shrink to fit.
	h := uint64(avail) / uint64(nJournals) * 64 / 66
	h &^= alloc.Granule - 1
	for h > 0 {
		need := uint64(nJournals) * (alloc.MetaSize(h) + h)
		if g.metaOff+need <= uint64(size) {
			break
		}
		h -= alloc.Granule
	}
	if h < 16*alloc.Granule {
		return g, ErrNoSpace
	}
	g.arenaHeap = h
	g.heapOff = g.metaOff + uint64(nJournals)*alloc.MetaSize(h)
	return g, nil
}

// Create formats a new pool. If path is empty the pool lives only in
// memory, which tests and benchmarks use.
func Create(path string, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	g, err := computeGeometry(cfg.Size, cfg.Journals, cfg.JournalCap)
	if err != nil {
		return nil, err
	}
	var dev *pmem.Device
	if path == "" {
		dev = pmem.New(cfg.Size, cfg.Mem)
	} else {
		dev, err = pmem.OpenFile(path, cfg.Size, cfg.Mem)
		if err != nil {
			return nil, err
		}
	}

	p := &Pool{dev: dev, heapStart: g.heapOff, arenaSpan: g.arenaHeap, geo: g, active: make(map[uint64]*journal.Journal)}
	for i := 0; i < g.nJournals; i++ {
		meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
		heap := g.heapOff + uint64(i)*g.arenaHeap
		p.arenas = append(p.arenas, alloc.Format(dev, meta, heap, g.arenaHeap))
	}
	p.journals = journal.Format(dev, p, g.dirOff, g.bufOff, g.bufCap, g.nJournals)
	p.initFreeList()

	// Both root slots start valid with root 0, then both header copies.
	var slot [rootSlotSize]byte
	encodeRootSlot(slot[:], 0, 0)
	dev.Write(rootSlotAOff, slot[:])
	dev.Write(rootSlotBOff, slot[:])
	dev.Persist(rootSlotAOff, headerSize-rootSlotAOff)
	p.hdr = header{
		version:    formatVersion,
		size:       uint64(cfg.Size),
		journals:   uint64(cfg.Journals),
		journalCap: uint64(cfg.JournalCap),
		arenaHeap:  g.arenaHeap,
		generation: 1,
		seq:        1,
	}
	writeHeader(dev, p.hdr)
	p.generation = 1
	p.open = true
	return p, nil
}

// Open attaches to an existing pool created with Create, running allocator
// and journal recovery first, and bumping the generation so that stale
// volatile weak pointers from the previous incarnation cannot resolve.
// The header stores the full geometry, so no configuration is needed.
func Open(path string, mem pmem.Options) (*Pool, error) {
	if path == "" {
		return nil, errors.New("pool: Open requires a path; use Create for in-memory pools")
	}
	h, err := readHeader(path)
	if err != nil {
		return nil, err
	}
	dev, err := pmem.OpenFile(path, int(h.size), mem)
	if err != nil {
		return nil, err
	}
	// Refuse structurally corrupt images before recovery touches them:
	// recovery assumes well-formed journal state words and allocator
	// metadata, and running it over garbage could destroy evidence.
	fsckStart := time.Now()
	if err := Fsck(dev); err != nil {
		return nil, err
	}
	fsckSecs := time.Since(fsckStart).Seconds()
	p, err := Attach(dev)
	if err != nil {
		return nil, err
	}
	p.prependRecoveryPhase("fsck", fsckSecs)
	return p, nil
}

// Attach builds a Pool over an already-loaded device that contains a
// formatted pool image. It runs full recovery. Tests use it to reopen a
// crashed in-memory pool; Open uses it for files.
func Attach(dev *pmem.Device) (*Pool, error) {
	h, _, _, err := chooseHeader(dev.Bytes())
	if err != nil {
		return nil, err
	}
	if h.version != formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrWrongVersion, h.version)
	}
	if int(h.size) != dev.Size() {
		return nil, fmt.Errorf("pool: header size %d != device size %d", h.size, dev.Size())
	}
	g, err := computeGeometry(int(h.size), int(h.journals), int(h.journalCap))
	if err != nil {
		return nil, err
	}
	if g.arenaHeap != h.arenaHeap {
		return nil, fmt.Errorf("pool: computed arena heap %d != recorded %d", g.arenaHeap, h.arenaHeap)
	}

	p := &Pool{dev: dev, heapStart: g.heapOff, arenaSpan: g.arenaHeap, geo: g, active: make(map[uint64]*journal.Journal)}
	phaseStart := time.Now()
	mark := func(name string) {
		now := time.Now()
		p.recoveryTimeline = append(p.recoveryTimeline, RecoveryPhase{Name: name, Seconds: now.Sub(phaseStart).Seconds()})
		phaseStart = now
	}
	for i := 0; i < g.nJournals; i++ {
		meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
		heap := g.heapOff + uint64(i)*g.arenaHeap
		p.arenas = append(p.arenas, alloc.Open(dev, meta, heap, g.arenaHeap))
	}
	mark("heap-open")
	p.recoveredBack, p.recoveredFwd = journal.Recover(dev, p, g.dirOff, g.bufOff, g.bufCap, g.nJournals)
	mark("journal-replay")
	// Settle slab claims only after journal recovery: a rolled-back
	// transaction's undo restores may target bytes inside a block it had
	// claimed, and those restores must land while the block is still
	// allocated. Every journal is idle now, so each claim's fate is decided
	// by its journal's durable epoch.
	for _, a := range p.arenas {
		a.ResolveClaims(func(jIdx int, e16 uint16) bool {
			if jIdx < 0 || jIdx >= g.nJournals {
				return false
			}
			return journal.ClaimAborted(dev, g.bufOff+uint64(jIdx)*g.bufCap, e16)
		})
	}
	mark("claim-resolution")
	p.journals = journal.Attach(dev, p, g.dirOff, g.bufOff, g.bufCap, g.nJournals)
	p.initFreeList()

	// Bump the generation: this incarnation's volatile pointers must not be
	// confused with the previous one's. The seq-protocol rewrite of both
	// copies doubles as mirror repair for any stale or damaged copy.
	h.generation++
	h.seq++
	writeHeader(dev, h)
	p.hdr = h
	p.generation = h.generation
	p.open = true
	mark("publish")
	return p, nil
}

func readHeader(path string) (header, error) {
	raw, err := readFilePrefix(path, headerSize)
	if err != nil {
		return header{}, err
	}
	h, _, _, err := chooseHeader(raw)
	return h, err
}

func (p *Pool) initFreeList() {
	p.freeJ = make(chan int, len(p.journals))
	for i := range p.journals {
		p.freeJ <- i
	}
}

// Device exposes the underlying emulated PM device.
func (p *Pool) Device() *pmem.Device { return p.dev }

// Generation identifies this open incarnation of the pool.
func (p *Pool) Generation() uint64 { return p.generation }

// IsOpen reports whether the pool accepts transactions.
func (p *Pool) IsOpen() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.open
}

// Journals reports the number of journal slots (the transaction
// concurrency bound).
func (p *Pool) Journals() int { return len(p.journals) }

// JournalsFree reports how many journal slots are currently idle; the
// difference from Journals is the number of in-flight transactions. It is
// an instantaneous snapshot, safe to call concurrently (serving-layer
// INFO/diagnostics).
func (p *Pool) JournalsFree() int { return len(p.freeJ) }

// Recovery reports what the Attach-time recovery pass did: how many
// interrupted transactions were rolled back and how many post-commit-point
// transactions were rolled forward. Both are zero for freshly created
// pools and for pools that shut down cleanly.
func (p *Pool) Recovery() (rolledBack, rolledForward int) {
	return p.recoveredBack, p.recoveredFwd
}

// RecoveryTimeline returns the open-time recovery phases in order with
// their durations. Empty for pools built by Create (nothing to recover).
func (p *Pool) RecoveryTimeline() []RecoveryPhase {
	out := make([]RecoveryPhase, len(p.recoveryTimeline))
	copy(out, p.recoveryTimeline)
	return out
}

// RecoverySeconds returns the total open-time recovery duration (the sum
// of the timeline phases).
func (p *Pool) RecoverySeconds() float64 {
	var s float64
	for _, ph := range p.recoveryTimeline {
		s += ph.Seconds
	}
	return s
}

// prependRecoveryPhase records a phase that ran before Attach (fsck,
// image repair) at the front of the timeline, keeping phase order equal
// to execution order.
func (p *Pool) prependRecoveryPhase(name string, seconds float64) {
	p.recoveryTimeline = append([]RecoveryPhase{{Name: name, Seconds: seconds}}, p.recoveryTimeline...)
}

// RootOff returns the offset of the root object, or 0 if none was set.
// It reads through the mirrored, CRC-protected root slots: a single
// damaged slot falls back to its mirror.
func (p *Pool) RootOff() uint64 {
	root, _, _ := readRoot(p.dev.Bytes())
	return root
}

// RootTypeHash returns the hash of the root type recorded at first open.
func (p *Pool) RootTypeHash() uint64 {
	_, typ, _ := readRoot(p.dev.Bytes())
	return typ
}

// SetRoot records the root object (and its type hash) inside transaction
// j, undo-logged like any other persistent update. Both mirror slots are
// logged and written together, so they stay identical through commits and
// rollbacks alike and only media damage can make them diverge.
func (p *Pool) SetRoot(j *journal.Journal, off, typeHash uint64) error {
	if err := p.Writable(); err != nil {
		return err
	}
	if err := j.DataLog(rootSlotAOff, rootSlotSize); err != nil {
		return err
	}
	if err := j.DataLog(rootSlotBOff, rootSlotSize); err != nil {
		return err
	}
	var slot [rootSlotSize]byte
	encodeRootSlot(slot[:], off, typeHash)
	p.rootMu.Lock()
	copy(p.dev.Bytes()[rootSlotAOff:], slot[:])
	copy(p.dev.Bytes()[rootSlotBOff:], slot[:])
	p.rootMu.Unlock()
	return nil
}

// Writable reports whether the pool accepts mutations: nil normally, an
// ErrReadOnly-wrapped reason in degraded mode.
func (p *Pool) Writable() error {
	if !p.degraded.Load() {
		return nil
	}
	p.degradeMu.Lock()
	why := p.degradeWhy
	p.degradeMu.Unlock()
	return fmt.Errorf("%w: %s", ErrReadOnly, why)
}

// Degraded reports whether the pool is in degraded read-only mode.
func (p *Pool) Degraded() bool { return p.degraded.Load() }

// DegradedReason returns what forced read-only mode ("" when healthy).
func (p *Pool) DegradedReason() string {
	p.degradeMu.Lock()
	defer p.degradeMu.Unlock()
	return p.degradeWhy
}

// Degrade switches the pool into read-only mode, recording why. The first
// reason sticks; later calls only append quarantined ranges via
// Quarantine. It is called by AttachRepair when an image cannot be fully
// repaired and by Scrub when it finds unrepairable damage on a live pool.
func (p *Pool) Degrade(reason string) {
	p.degradeMu.Lock()
	if p.degradeWhy == "" {
		p.degradeWhy = reason
	}
	p.degradeMu.Unlock()
	p.degraded.Store(true)
}

// AddQuarantine records a byte range whose owning structure failed
// verification and could not be repaired. Duplicate ranges (a repeated
// scrub re-finding the same damage) are collapsed.
func (p *Pool) AddQuarantine(r Range) {
	p.degradeMu.Lock()
	defer p.degradeMu.Unlock()
	for _, have := range p.quarantine {
		if have == r {
			return
		}
	}
	p.quarantine = append(p.quarantine, r)
}

// Quarantine lists the byte ranges condemned so far.
func (p *Pool) Quarantine() []Range {
	p.degradeMu.Lock()
	defer p.degradeMu.Unlock()
	out := make([]Range, len(p.quarantine))
	copy(out, p.quarantine)
	return out
}

// ArenaMetaRange reports arena i's allocator-metadata region (redo log,
// free heads, order map, checksum slots, slab ledger). Fault-injection
// harnesses use it to place at-rest media damage precisely.
func (p *Pool) ArenaMetaRange(i int) Range {
	meta := alloc.MetaSize(p.geo.arenaHeap)
	return Range{Off: p.geo.metaOff + uint64(i)*meta, Len: meta}
}

// ArenaLedgerRange reports arena i's slab-ledger span (a sub-range of
// ArenaMetaRange). Every entry there is CRC-gated and replay discards
// what fails, so fault campaigns aiming at the ledger specifically must
// see damage masked, never silent.
func (p *Pool) ArenaLedgerRange(i int) Range {
	off, size := p.arenas[i].LedgerRange()
	return Range{Off: off, Len: size}
}

// AllocEx, Free and IsAllocated implement journal.Heap by routing to the
// arena that owns the offset.

// AllocEx allocates from the given arena, folding extra updates into the
// allocation's crash-atomic step. Degraded pools refuse with ErrReadOnly.
func (p *Pool) AllocEx(arena int, size uint64, payload []byte, extra func(off uint64) []alloc.Update) (uint64, error) {
	if err := p.Writable(); err != nil {
		return 0, err
	}
	return p.arenas[arena].AllocEx(size, payload, extra)
}

// AllocClaim serves an allocation from the arena's slab cache in
// deferred-fence mode (see alloc.Buddy.AllocClaim). Degraded pools
// report a miss so no mutation path opens.
func (p *Pool) AllocClaim(arena int, size uint64, payload []byte, epoch uint64) (uint64, bool) {
	if p.Writable() != nil {
		return 0, false
	}
	return p.arenas[arena].AllocClaim(size, payload, arena, epoch)
}

// RetireClaims recycles the arena's settled claim ledger slots.
func (p *Pool) RetireClaims(arena int) {
	p.arenas[arena].RetireClaims()
}

// Free returns a block to the arena that owns it. Degraded pools refuse
// with ErrReadOnly.
func (p *Pool) Free(off, size uint64) error {
	if err := p.Writable(); err != nil {
		return err
	}
	return p.arenaFor(off).Free(off, size)
}

// IsAllocated reports whether off is an allocated block of size's order.
func (p *Pool) IsAllocated(off, size uint64) bool {
	a := p.arenaForOrNil(off)
	return a != nil && a.IsAllocated(off, size)
}

func (p *Pool) arenaFor(off uint64) *alloc.Buddy {
	a := p.arenaForOrNil(off)
	if a == nil {
		panic(fmt.Sprintf("pool: offset %#x outside every arena", off))
	}
	return a
}

func (p *Pool) arenaForOrNil(off uint64) *alloc.Buddy {
	if off < p.heapStart {
		return nil
	}
	i := (off - p.heapStart) / p.arenaSpan
	if int(i) >= len(p.arenas) {
		return nil
	}
	return p.arenas[i]
}

// InUse reports allocated bytes across all arenas.
func (p *Pool) InUse() uint64 {
	var total uint64
	for _, a := range p.arenas {
		total += a.InUse()
	}
	return total
}

// FreeBytes reports free heap bytes across all arenas.
func (p *Pool) FreeBytes() uint64 {
	var total uint64
	for _, a := range p.arenas {
		total += a.FreeBytes()
	}
	return total
}

// CheckConsistency validates every arena's structural invariants.
func (p *Pool) CheckConsistency() error {
	for i, a := range p.arenas {
		if err := a.CheckConsistency(); err != nil {
			return fmt.Errorf("arena %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes the pool and detaches it. In-flight transactions must have
// finished; subsequent Transaction calls fail with ErrClosed. Volatile weak
// pointers into the pool become unpromotable.
func (p *Pool) Close() error {
	p.mu.Lock()
	if !p.open {
		p.mu.Unlock()
		return ErrClosed
	}
	p.open = false
	p.mu.Unlock()
	return p.dev.Close()
}

// ArenaInUse reports allocated bytes in one arena (diagnostics).
func (p *Pool) ArenaInUse(i int) uint64 { return p.arenas[i].InUse() }

// ArenaSlabStats reports one arena's slab-cache counters (metrics and
// diagnostics).
func (p *Pool) ArenaSlabStats(i int) alloc.SlabStats { return p.arenas[i].SlabStats() }

// SetSlabParams tunes every arena's slab cache: refill spares per miss
// and parked blocks per class before a spill; refill < 1 disables the
// caches (the pre-slab, full-fence behaviour, kept for ablations).
func (p *Pool) SetSlabParams(refill, capPerClass int) {
	for _, a := range p.arenas {
		a.SetSlabParams(refill, capPerClass)
	}
}
