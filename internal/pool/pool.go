// Package pool implements Corundum's persistent memory pools: a PM-backed
// file holding metadata, a root pointer, journals, and a sharded
// crash-atomic heap. A pool is self-contained — every offset stored inside
// it refers to the same pool — and carries a generation number that
// invalidates volatile weak pointers across close/reopen cycles.
package pool

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"corundum/internal/alloc"
	"corundum/internal/journal"
	"corundum/internal/pmem"
)

const (
	magic         = 0x434F52554E44554D // "CORUNDUM"
	formatVersion = 1
	headerSize    = 2 * pmem.CacheLineSize
)

// Header word offsets.
const (
	hdrMagic = 8 * iota
	hdrVersion
	hdrGeneration
	hdrRoot
	hdrRootType
	hdrSize
	hdrJournals
	hdrJournalCap
	hdrArenaHeap
)

// Pool state errors.
var (
	ErrClosed       = errors.New("pool: pool is closed")
	ErrNotAPool     = errors.New("pool: file is not a Corundum pool")
	ErrWrongVersion = errors.New("pool: incompatible format version")
	ErrWrongRoot    = errors.New("pool: root type differs from the one the pool was created with")
	ErrNoSpace      = errors.New("pool: size too small for the requested configuration")
	// ErrBusy reports that every journal slot was in use for longer than
	// the configured acquire timeout (SetAcquireTimeout). The transaction
	// never began, so retrying is always safe; serving layers surface it
	// as a retryable backpressure signal instead of blocking forever.
	ErrBusy = errors.New("pool: all journal slots busy")
	// ErrCorrupt reports that a pool image failed its structural fsck
	// pass; the detail names what is wrong. Open refuses such pools.
	ErrCorrupt = errors.New("pool: image failed structural check")
)

// Config sizes a pool at creation. The parameters are persisted in the pool
// header, so reopening needs no configuration.
type Config struct {
	// Size is the total pool footprint in bytes (default 64 MiB).
	Size int
	// Journals is the number of journal slots and heap arenas; it bounds
	// how many transactions run concurrently (default 16).
	Journals int
	// JournalCap is the head log buffer per journal in bytes (default
	// 256 KiB). Transactions that outgrow it chain continuation pages from
	// their arena, so this only tunes how much logging avoids allocation.
	JournalCap int
	// Mem selects latency and crash-tracking behaviour of the device.
	Mem pmem.Options
}

func (c Config) withDefaults() Config {
	if c.Size == 0 {
		c.Size = 64 << 20
	}
	if c.Journals <= 0 {
		c.Journals = 16
	}
	if c.JournalCap == 0 {
		c.JournalCap = 256 << 10
	}
	// The head buffer must hold the state word plus at least one maximal
	// entry and a chain-link reservation; 4 KiB is a comfortable floor.
	if c.JournalCap < 4<<10 {
		c.JournalCap = 4 << 10
	}
	return c
}

// Pool is an open persistent memory pool.
type Pool struct {
	dev      *pmem.Device
	arenas   []*alloc.Buddy
	journals []*journal.Journal
	freeJ    chan int

	heapStart  uint64 // first heap byte (arena 0)
	arenaSpan  uint64 // heap bytes per arena
	generation uint64

	// Recovery statistics from Attach (zero for freshly created pools).
	recoveredBack int
	recoveredFwd  int

	// acquireTO, when positive (nanoseconds), bounds how long Transaction
	// waits for a free journal slot before failing with ErrBusy.
	acquireTO atomic.Int64

	mu     sync.RWMutex
	open   bool
	active map[uint64]*journal.Journal // goroutine id -> journal (flattening)

	// metrics, when set by EnableMetrics, receives per-transaction
	// observations; atomic so the transaction path never takes mu for it.
	metrics atomic.Pointer[poolMetrics]
}

type geometry struct {
	dirOff, bufOff, bufCap uint64
	nJournals              int
	metaOff, heapOff       uint64
	arenaHeap              uint64
}

func computeGeometry(size, nJournals, journalCap int) (geometry, error) {
	g := geometry{
		dirOff:    headerSize,
		bufOff:    headerSize + journal.DirSize(nJournals),
		bufCap:    uint64(journalCap),
		nJournals: nJournals,
	}
	g.metaOff = g.bufOff + uint64(nJournals*journalCap)
	avail := int64(size) - int64(g.metaOff)
	if avail <= 0 {
		return g, ErrNoSpace
	}
	// Each arena needs MetaSize(h) + h; MetaSize grows ~h/64, so start from
	// an optimistic estimate and shrink to fit.
	h := uint64(avail) / uint64(nJournals) * 64 / 66
	h &^= alloc.Granule - 1
	for h > 0 {
		need := uint64(nJournals) * (alloc.MetaSize(h) + h)
		if g.metaOff+need <= uint64(size) {
			break
		}
		h -= alloc.Granule
	}
	if h < 16*alloc.Granule {
		return g, ErrNoSpace
	}
	g.arenaHeap = h
	g.heapOff = g.metaOff + uint64(nJournals)*alloc.MetaSize(h)
	return g, nil
}

// Create formats a new pool. If path is empty the pool lives only in
// memory, which tests and benchmarks use.
func Create(path string, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	g, err := computeGeometry(cfg.Size, cfg.Journals, cfg.JournalCap)
	if err != nil {
		return nil, err
	}
	var dev *pmem.Device
	if path == "" {
		dev = pmem.New(cfg.Size, cfg.Mem)
	} else {
		dev, err = pmem.OpenFile(path, cfg.Size, cfg.Mem)
		if err != nil {
			return nil, err
		}
	}

	p := &Pool{dev: dev, heapStart: g.heapOff, arenaSpan: g.arenaHeap, active: make(map[uint64]*journal.Journal)}
	for i := 0; i < g.nJournals; i++ {
		meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
		heap := g.heapOff + uint64(i)*g.arenaHeap
		p.arenas = append(p.arenas, alloc.Format(dev, meta, heap, g.arenaHeap))
	}
	p.journals = journal.Format(dev, p, g.dirOff, g.bufOff, g.bufCap, g.nJournals)
	p.initFreeList()

	hdr := make([]byte, headerSize)
	put := func(off int, v uint64) { binary.LittleEndian.PutUint64(hdr[off:], v) }
	put(hdrMagic, magic)
	put(hdrVersion, formatVersion)
	put(hdrGeneration, 1)
	put(hdrSize, uint64(cfg.Size))
	put(hdrJournals, uint64(cfg.Journals))
	put(hdrJournalCap, uint64(cfg.JournalCap))
	put(hdrArenaHeap, g.arenaHeap)
	dev.Write(0, hdr)
	dev.Persist(0, headerSize)
	p.generation = 1
	p.open = true
	return p, nil
}

// Open attaches to an existing pool created with Create, running allocator
// and journal recovery first, and bumping the generation so that stale
// volatile weak pointers from the previous incarnation cannot resolve.
// The header stores the full geometry, so no configuration is needed.
func Open(path string, mem pmem.Options) (*Pool, error) {
	if path == "" {
		return nil, errors.New("pool: Open requires a path; use Create for in-memory pools")
	}
	raw, err := readHeader(path)
	if err != nil {
		return nil, err
	}
	size := int(binary.LittleEndian.Uint64(raw[hdrSize:]))
	dev, err := pmem.OpenFile(path, size, mem)
	if err != nil {
		return nil, err
	}
	// Refuse structurally corrupt images before recovery touches them:
	// recovery assumes well-formed journal state words and allocator
	// metadata, and running it over garbage could destroy evidence.
	if err := Fsck(dev); err != nil {
		return nil, err
	}
	return Attach(dev)
}

// Attach builds a Pool over an already-loaded device that contains a
// formatted pool image. It runs full recovery. Tests use it to reopen a
// crashed in-memory pool; Open uses it for files.
func Attach(dev *pmem.Device) (*Pool, error) {
	hdr := dev.Bytes()[:headerSize]
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(hdr[off:]) }
	if get(hdrMagic) != magic {
		return nil, ErrNotAPool
	}
	if get(hdrVersion) != formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrWrongVersion, get(hdrVersion))
	}
	size := int(get(hdrSize))
	nJournals := int(get(hdrJournals))
	journalCap := int(get(hdrJournalCap))
	if size != dev.Size() {
		return nil, fmt.Errorf("pool: header size %d != device size %d", size, dev.Size())
	}
	g, err := computeGeometry(size, nJournals, journalCap)
	if err != nil {
		return nil, err
	}
	if g.arenaHeap != get(hdrArenaHeap) {
		return nil, fmt.Errorf("pool: computed arena heap %d != recorded %d", g.arenaHeap, get(hdrArenaHeap))
	}

	p := &Pool{dev: dev, heapStart: g.heapOff, arenaSpan: g.arenaHeap, active: make(map[uint64]*journal.Journal)}
	for i := 0; i < nJournals; i++ {
		meta := g.metaOff + uint64(i)*alloc.MetaSize(g.arenaHeap)
		heap := g.heapOff + uint64(i)*g.arenaHeap
		p.arenas = append(p.arenas, alloc.Open(dev, meta, heap, g.arenaHeap))
	}
	p.recoveredBack, p.recoveredFwd = journal.Recover(dev, p, g.dirOff, g.bufOff, g.bufCap, nJournals)
	p.journals = journal.Attach(dev, p, g.dirOff, g.bufOff, g.bufCap, nJournals)
	p.initFreeList()

	// Bump the generation: this incarnation's volatile pointers must not be
	// confused with the previous one's.
	p.generation = get(hdrGeneration) + 1
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], p.generation)
	dev.Write(hdrGeneration, w[:])
	dev.Persist(hdrGeneration, 8)
	p.open = true
	return p, nil
}

func readHeader(path string) ([]byte, error) {
	raw, err := readFilePrefix(path, headerSize)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(raw[hdrMagic:]) != magic {
		return nil, ErrNotAPool
	}
	return raw, nil
}

func (p *Pool) initFreeList() {
	p.freeJ = make(chan int, len(p.journals))
	for i := range p.journals {
		p.freeJ <- i
	}
}

// Device exposes the underlying emulated PM device.
func (p *Pool) Device() *pmem.Device { return p.dev }

// Generation identifies this open incarnation of the pool.
func (p *Pool) Generation() uint64 { return p.generation }

// IsOpen reports whether the pool accepts transactions.
func (p *Pool) IsOpen() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.open
}

// Journals reports the number of journal slots (the transaction
// concurrency bound).
func (p *Pool) Journals() int { return len(p.journals) }

// JournalsFree reports how many journal slots are currently idle; the
// difference from Journals is the number of in-flight transactions. It is
// an instantaneous snapshot, safe to call concurrently (serving-layer
// INFO/diagnostics).
func (p *Pool) JournalsFree() int { return len(p.freeJ) }

// Recovery reports what the Attach-time recovery pass did: how many
// interrupted transactions were rolled back and how many post-commit-point
// transactions were rolled forward. Both are zero for freshly created
// pools and for pools that shut down cleanly.
func (p *Pool) Recovery() (rolledBack, rolledForward int) {
	return p.recoveredBack, p.recoveredFwd
}

// RootOff returns the offset of the root object, or 0 if none was set.
func (p *Pool) RootOff() uint64 {
	return binary.LittleEndian.Uint64(p.dev.Bytes()[hdrRoot:])
}

// RootTypeHash returns the hash of the root type recorded at first open.
func (p *Pool) RootTypeHash() uint64 {
	return binary.LittleEndian.Uint64(p.dev.Bytes()[hdrRootType:])
}

// SetRoot records the root object (and its type hash) inside transaction
// j, undo-logged like any other persistent update.
func (p *Pool) SetRoot(j *journal.Journal, off, typeHash uint64) error {
	if err := j.DataLog(hdrRoot, 16); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(p.dev.Bytes()[hdrRoot:], off)
	binary.LittleEndian.PutUint64(p.dev.Bytes()[hdrRootType:], typeHash)
	return nil
}

// AllocEx, Free and IsAllocated implement journal.Heap by routing to the
// arena that owns the offset.

// AllocEx allocates from the given arena, folding extra updates into the
// allocation's crash-atomic step.
func (p *Pool) AllocEx(arena int, size uint64, payload []byte, extra func(off uint64) []alloc.Update) (uint64, error) {
	return p.arenas[arena].AllocEx(size, payload, extra)
}

// Free returns a block to the arena that owns it.
func (p *Pool) Free(off, size uint64) error {
	return p.arenaFor(off).Free(off, size)
}

// IsAllocated reports whether off is an allocated block of size's order.
func (p *Pool) IsAllocated(off, size uint64) bool {
	a := p.arenaForOrNil(off)
	return a != nil && a.IsAllocated(off, size)
}

func (p *Pool) arenaFor(off uint64) *alloc.Buddy {
	a := p.arenaForOrNil(off)
	if a == nil {
		panic(fmt.Sprintf("pool: offset %#x outside every arena", off))
	}
	return a
}

func (p *Pool) arenaForOrNil(off uint64) *alloc.Buddy {
	if off < p.heapStart {
		return nil
	}
	i := (off - p.heapStart) / p.arenaSpan
	if int(i) >= len(p.arenas) {
		return nil
	}
	return p.arenas[i]
}

// InUse reports allocated bytes across all arenas.
func (p *Pool) InUse() uint64 {
	var total uint64
	for _, a := range p.arenas {
		total += a.InUse()
	}
	return total
}

// FreeBytes reports free heap bytes across all arenas.
func (p *Pool) FreeBytes() uint64 {
	var total uint64
	for _, a := range p.arenas {
		total += a.FreeBytes()
	}
	return total
}

// CheckConsistency validates every arena's structural invariants.
func (p *Pool) CheckConsistency() error {
	for i, a := range p.arenas {
		if err := a.CheckConsistency(); err != nil {
			return fmt.Errorf("arena %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes the pool and detaches it. In-flight transactions must have
// finished; subsequent Transaction calls fail with ErrClosed. Volatile weak
// pointers into the pool become unpromotable.
func (p *Pool) Close() error {
	p.mu.Lock()
	if !p.open {
		p.mu.Unlock()
		return ErrClosed
	}
	p.open = false
	p.mu.Unlock()
	return p.dev.Close()
}

// ArenaInUse reports allocated bytes in one arena (diagnostics).
func (p *Pool) ArenaInUse(i int) uint64 { return p.arenas[i].InUse() }
