package pool

import (
	"fmt"
	"io"
	"os"
)

// readFilePrefix reads the first n bytes of path without loading the whole
// file, enough to parse a pool header and learn the pool's true size.
func readFilePrefix(path string, n int) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("pool: %s too short for a pool header: %w", path, err)
	}
	return buf, nil
}
