package pool

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"corundum/internal/pmem"
)

// On-media layout of the 512-byte header region (format v2):
//
//	[  0,128)  static header copy A
//	[128,256)  static header copy B
//	[256,280)  root slot A: [root u64][rootType u64][crc32 u64]
//	[320,344)  root slot B
//	[344,512)  reserved
//
// Every metadata word a single at-rest media fault could destroy is
// mirrored. The static header carries a sequence number and a CRC32 over
// its fields; writers persist copy A, then copy B, so a crash (even a
// torn one — the CRC rejects partial copies) leaves at least one valid
// copy, and readers pick the valid copy with the higher sequence,
// repairing the other. The root slots are mutated only inside
// transactions (both copies undo-logged together), so they only diverge
// through media damage, which their CRCs expose and the mirror repairs.
const (
	headerCopySize = 2 * pmem.CacheLineSize
	hdrCopyAOff    = 0
	hdrCopyBOff    = headerCopySize
	rootSlotAOff   = 256
	rootSlotBOff   = 320
	rootSlotSize   = 24
	headerSize     = 512
)

// Static header field offsets within one copy. The CRC32 at fCRC covers
// bytes [0, fCRC).
const (
	fMagic      = 0
	fVersion    = 8
	fSize       = 16
	fJournals   = 24
	fJournalCap = 32
	fArenaHeap  = 40
	fGeneration = 48
	fSeq        = 56
	fCRC        = 64
)

// header is the decoded static header of a pool.
type header struct {
	version    uint64
	size       uint64
	journals   uint64
	journalCap uint64
	arenaHeap  uint64
	generation uint64
	seq        uint64
}

func encodeHeader(buf []byte, h header) {
	put := func(off int, v uint64) { binary.LittleEndian.PutUint64(buf[off:], v) }
	put(fMagic, magic)
	put(fVersion, h.version)
	put(fSize, h.size)
	put(fJournals, h.journals)
	put(fJournalCap, h.journalCap)
	put(fArenaHeap, h.arenaHeap)
	put(fGeneration, h.generation)
	put(fSeq, h.seq)
	binary.LittleEndian.PutUint64(buf[fCRC:], uint64(crc32.ChecksumIEEE(buf[:fCRC])))
}

// decodeHeader parses one header copy; ok is false when the magic or the
// CRC does not check out (a torn write or at-rest damage).
func decodeHeader(b []byte) (header, bool) {
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	if get(fMagic) != magic {
		return header{}, false
	}
	if uint32(get(fCRC)) != crc32.ChecksumIEEE(b[:fCRC]) {
		return header{}, false
	}
	return header{
		version:    get(fVersion),
		size:       get(fSize),
		journals:   get(fJournals),
		journalCap: get(fJournalCap),
		arenaHeap:  get(fArenaHeap),
		generation: get(fGeneration),
		seq:        get(fSeq),
	}, true
}

// chooseHeader picks the authoritative static header from an image: the
// valid copy with the higher sequence number. goodA/goodB report which
// copies individually validated, so callers can repair the loser.
func chooseHeader(img []byte) (h header, goodA, goodB bool, err error) {
	a, okA := decodeHeader(img[hdrCopyAOff : hdrCopyAOff+headerCopySize])
	b, okB := decodeHeader(img[hdrCopyBOff : hdrCopyBOff+headerCopySize])
	switch {
	case okA && okB:
		if b.seq > a.seq {
			return b, true, true, nil
		}
		return a, true, true, nil
	case okA:
		return a, true, false, nil
	case okB:
		return b, false, true, nil
	}
	// Neither copy validates. If neither even carries the magic, this is
	// not a pool at all; otherwise both mirrors are damaged.
	if binary.LittleEndian.Uint64(img[hdrCopyAOff+fMagic:]) != magic &&
		binary.LittleEndian.Uint64(img[hdrCopyBOff+fMagic:]) != magic {
		return header{}, false, false, ErrNotAPool
	}
	return header{}, false, false, fmt.Errorf("%w: both static header copies failed their checksum", ErrCorrupt)
}

// writeHeader persists h to both copies, A before B, so a crash at any
// point leaves a valid copy carrying either the old or the new sequence.
// Callers bump h.seq before writing; it also serves as mirror repair
// (both copies leave identical and valid).
func writeHeader(dev *pmem.Device, h header) {
	var buf [headerCopySize]byte
	encodeHeader(buf[:], h)
	dev.Write(hdrCopyAOff, buf[:])
	dev.Persist(hdrCopyAOff, headerCopySize)
	dev.Write(hdrCopyBOff, buf[:])
	dev.Persist(hdrCopyBOff, headerCopySize)
}

// encodeRootSlot renders one root slot: root offset, root type hash, and
// a CRC32 (stored widened to a word) over the two.
func encodeRootSlot(buf []byte, root, typ uint64) {
	binary.LittleEndian.PutUint64(buf[0:], root)
	binary.LittleEndian.PutUint64(buf[8:], typ)
	binary.LittleEndian.PutUint64(buf[16:], uint64(crc32.ChecksumIEEE(buf[:16])))
}

// decodeRootSlot parses one root slot; ok is false on CRC mismatch.
func decodeRootSlot(b []byte) (root, typ uint64, ok bool) {
	if uint32(binary.LittleEndian.Uint64(b[16:])) != crc32.ChecksumIEEE(b[:16]) {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(b[0:]), binary.LittleEndian.Uint64(b[8:]), true
}

// readRoot returns the effective root from an image, preferring slot A
// and falling back to the mirror. ok is false only when BOTH slots fail
// their CRC — the root is then unknown, which is a corruption condition
// (a fresh pool has both slots valid with root 0).
func readRoot(img []byte) (root, typ uint64, ok bool) {
	if r, t, okA := decodeRootSlot(img[rootSlotAOff : rootSlotAOff+rootSlotSize]); okA {
		return r, t, true
	}
	if r, t, okB := decodeRootSlot(img[rootSlotBOff : rootSlotBOff+rootSlotSize]); okB {
		return r, t, true
	}
	return 0, 0, false
}
