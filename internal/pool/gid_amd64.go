//go:build amd64

package pool

// getg is implemented in gid_amd64.s.
func getg() uintptr

// gid returns a stable identity for the calling goroutine: its g pointer.
// A recycled g only ever reappears after the previous goroutine exited,
// and transactions cannot outlive their goroutine (endTx is deferred), so
// identity collisions cannot alias live transactions.
func gid() uint64 { return uint64(getg()) }
