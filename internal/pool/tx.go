package pool

import (
	"fmt"
	"time"

	"corundum/internal/gid"
	"corundum/internal/journal"
)

// Transaction runs fn inside a failure-atomic transaction on this pool.
// The journal passed to fn is the capability needed by every mutating
// operation, which is how the TX-Journal-Only invariant is kept: journals
// exist only here.
//
// Nested calls from the same goroutine flatten, as in the paper: the inner
// body joins the outer transaction and only the outermost commit publishes
// anything. If fn returns an error or panics, the whole (outermost)
// transaction rolls back; panics are re-raised after rollback, mirroring
// Corundum's behaviour under panic!().
func (p *Pool) Transaction(fn func(j *journal.Journal) error) error {
	p.mu.RLock()
	if !p.open {
		p.mu.RUnlock()
		return ErrClosed
	}
	g := gid.ID()
	j, nested := p.active[g]
	p.mu.RUnlock()

	if !nested {
		idx, err := p.acquireSlot()
		if err != nil {
			return err
		}
		j = p.journals[idx]
		p.mu.Lock()
		p.active[g] = j
		p.mu.Unlock()
	}

	var began time.Time
	if !nested && p.metrics.Load() != nil {
		began = time.Now()
	}
	j.Begin()
	var err error
	done := false
	defer func() {
		if !done {
			// fn panicked: roll back, release, and let the panic continue.
			j.MarkAborted()
			p.endTx(g, j, nested, began)
		}
	}()
	err = fn(j)
	done = true
	if err != nil {
		j.MarkAborted()
	}
	committed := p.endTx(g, j, nested, began)
	if err == nil && !committed && !nested {
		return fmt.Errorf("pool: transaction aborted")
	}
	return err
}

// acquireSlot claims a free journal slot, waiting forever by default. With
// SetAcquireTimeout configured it gives up after that long and returns
// ErrBusy — the journal-exhaustion backpressure signal; no transaction
// state has been touched, so callers can always retry.
func (p *Pool) acquireSlot() (int, error) {
	// Fast path: a slot is free right now.
	select {
	case idx := <-p.freeJ:
		return idx, nil
	default:
	}
	to := time.Duration(p.acquireTO.Load())
	if to <= 0 {
		return <-p.freeJ, nil // waits if all journals are busy
	}
	t := time.NewTimer(to)
	defer t.Stop()
	select {
	case idx := <-p.freeJ:
		return idx, nil
	case <-t.C:
		return 0, ErrBusy
	}
}

// SetAcquireTimeout bounds how long Transaction waits for a free journal
// slot before failing with ErrBusy. Zero (the default) restores unbounded
// blocking. Safe to call concurrently with transactions.
func (p *Pool) SetAcquireTimeout(d time.Duration) {
	p.acquireTO.Store(int64(d))
}

// endTx closes one nesting level and, at the outermost level, returns the
// journal to the free list. It reports whether the transaction committed
// (meaningful only at the outermost level). Metrics are observed before
// the journal is released: once it is back on the free list another
// goroutine's Begin may reset its counters.
func (p *Pool) endTx(g uint64, j *journal.Journal, nested bool, began time.Time) bool {
	committed := j.End()
	if !nested {
		if m := p.metrics.Load(); m != nil && !began.IsZero() {
			m.observeTx(j, committed, began)
		}
		p.mu.Lock()
		delete(p.active, g)
		p.mu.Unlock()
		p.freeJ <- j.Arena()
	}
	return committed
}

// InTransaction reports whether the calling goroutine is inside a
// transaction on this pool, and returns its journal if so.
func (p *Pool) InTransaction() (*journal.Journal, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	j, ok := p.active[gid.ID()]
	return j, ok
}
