package pool

import (
	"encoding/binary"
	"path/filepath"
	"testing"

	"corundum/internal/alloc"
	"corundum/internal/journal"
	"corundum/internal/pmem"
)

func TestInspectCleanPool(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.pool")
	p, err := Create(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var root uint64
	if err := p.Transaction(func(j *journal.Journal) error {
		var err error
		root, err = j.Alloc(64)
		if err != nil {
			return err
		}
		return p.SetRoot(j, root, 0xBEEF)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) != 0 {
		t.Fatalf("clean pool reported errors: %v", r.Errors)
	}
	if r.RootOff != root || r.RootType != 0xBEEF {
		t.Fatalf("root %#x/%#x, want %#x/0xBEEF", r.RootOff, r.RootType, root)
	}
	if len(r.Arenas) != 4 || len(r.JournalInfo) != 4 {
		t.Fatalf("arenas %d journals %d", len(r.Arenas), len(r.JournalInfo))
	}
	var inUse uint64
	for _, a := range r.Arenas {
		inUse += a.InUse
		if a.Err != "" {
			t.Errorf("arena %d: %s", a.Index, a.Err)
		}
	}
	if inUse != 64 {
		t.Fatalf("in use %d, want 64", inUse)
	}
	for _, j := range r.JournalInfo {
		if j.State != "idle" {
			t.Errorf("journal %d state %q", j.Index, j.State)
		}
	}
}

func TestInspectCrashedPoolShowsPendingJournal(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := p.Device()
	// Crash at the second fence: the allocation batch's first fence has
	// made the journal's running word durable, but the transaction is far
	// from its commit point — robust to op-count shifts in the alloc path.
	var fences int
	dev.SetFaultInjector(func(op pmem.Op) bool {
		if op == pmem.OpFence {
			fences++
		}
		return fences == 2
	})
	func() {
		defer func() { recover() }()
		_ = p.Transaction(func(j *journal.Journal) error {
			off, err := j.Alloc(64)
			if err != nil {
				return err
			}
			return p.SetRoot(j, off, 1)
		})
	}()
	dev.SetFaultInjector(nil)
	dev.Crash()

	r, err := InspectDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) != 0 {
		t.Fatalf("crashed-but-recoverable pool reported corruption: %v", r.Errors)
	}
	pending := 0
	for _, j := range r.JournalInfo {
		if j.State != "idle" {
			pending++
		}
	}
	if pending != 1 {
		t.Fatalf("pending journals = %d, want 1", pending)
	}
	// Inspection must not have modified the image: recovery still works.
	if _, err := Attach(dev); err != nil {
		t.Fatal(err)
	}
}

func TestInspectDetectsCorruption(t *testing.T) {
	p, err := Create("", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := p.Device()
	// Smash an arena's free-list head with garbage and persist it.
	g, _ := computeGeometry(testConfig().Size, testConfig().Journals, testConfig().JournalCap)
	// Locate arena 0's first nonzero word (the redo-log area leading the
	// metadata is all zeros at rest, so this is a free-list head) and
	// corrupt it.
	meta := g.metaOff
	for off := meta; off < meta+alloc.MetaSize(g.arenaHeap); off += 8 {
		if binary.LittleEndian.Uint64(dev.Bytes()[off:]) != 0 {
			binary.LittleEndian.PutUint64(dev.Bytes()[off:], 0xDEADBEEF)
			dev.MarkDirty(off, 8)
			dev.Persist(off, 8)
			break
		}
	}
	r, err := InspectDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) == 0 {
		t.Fatal("corrupted free list not detected")
	}
}

func TestInspectRejectsGarbage(t *testing.T) {
	dev := pmem.New(1<<16, pmem.Options{})
	if _, err := InspectDevice(dev); err == nil {
		t.Fatal("garbage image accepted")
	}
}
