package pool

import (
	"testing"

	"corundum/internal/journal"
)

func BenchmarkGid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = gid()
	}
}

func BenchmarkPoolTxNop(b *testing.B) {
	p, err := Create("", Config{Size: 8 << 20, Journals: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Transaction(func(j *journal.Journal) error { return nil })
	}
}

// TestGidStablePerGoroutine verifies the identity contract the flattening
// machinery relies on: stable within a goroutine, distinct across live
// goroutines.
func TestGidStablePerGoroutine(t *testing.T) {
	mine := gid()
	if mine == 0 {
		t.Fatal("gid returned 0")
	}
	if gid() != mine {
		t.Fatal("gid not stable within a goroutine")
	}
	const n = 32
	ids := make(chan uint64, n)
	hold := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			ids <- gid()
			<-hold // keep the goroutine alive so its g cannot be recycled
		}()
	}
	seen := map[uint64]bool{mine: true}
	for i := 0; i < n; i++ {
		id := <-ids
		if seen[id] {
			t.Fatalf("gid %d seen twice among live goroutines", id)
		}
		seen[id] = true
	}
	close(hold)
}
