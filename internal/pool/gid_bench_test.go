package pool

import (
	"testing"

	"corundum/internal/journal"
)

// The goroutine-identity primitive itself lives in internal/gid (with its
// own contract test); this benchmark pins the cost of the empty
// transaction that rides on it.
func BenchmarkPoolTxNop(b *testing.B) {
	p, err := Create("", Config{Size: 8 << 20, Journals: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Transaction(func(j *journal.Journal) error { return nil })
	}
}
