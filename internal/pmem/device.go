package pmem

import (
	"errors"
	"fmt"
	"hash/maphash"
	"math/rand"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"corundum/internal/obs"
)

// Device is an emulated persistent-memory device.
//
// The live contents (what loads observe) are in buf; callers may take
// pointers directly into buf via Bytes, which models DAX-mapped PM where
// loads and stores bypass the OS entirely. Stores land in the emulated CPU
// cache: they are visible immediately but do not survive a crash until the
// affected cache lines are Flushed and a Fence has completed. When crash
// tracking is enabled, the device maintains a shadow copy holding exactly
// the bytes that would survive power loss, so tests can cut power at any
// instruction boundary and observe the surviving state.
//
// All methods are safe for concurrent use. Distinct goroutines writing the
// same cache line concurrently is a data race in the program under test,
// exactly as on real hardware.
type Device struct {
	path  string
	prof  Profile
	buf   []byte
	track bool

	// dirty is an atomic bitset with one bit per cache line: set while the
	// line has stores that have not been flushed.
	dirty []atomic.Uint64

	// shadow and pending exist only when crash tracking is on. shadow holds
	// fenced (durable) bytes. pending holds lines that have been flushed but
	// not yet fenced; a crash in that window loses them too (worst case).
	shadowMu sync.Mutex
	shadow   []byte
	pending  map[uint32][]byte

	// ctrs attributes every operation to the calling goroutine's scope
	// (see Scope); Stats sums them into a snapshot.
	ctrs [NumScopes]opCounters

	// hook, when set, observes every completed Write/Flush/Fence with its
	// scope — the extension point external tracers and tests attach to.
	hook atomic.Pointer[OpHook]

	// flight, when set, is the crash flight recorder: a bounded ring of
	// recent operations dumped after a crash to explain torn state.
	flight atomic.Pointer[obs.Recorder]

	// ops counts injection points deterministically: one per Write, one
	// per cache line of every Flush, one per Fence — the same sequence a
	// fault injector observes, so replaying a deterministic workload
	// produces the same count every time. crashAt, when non-zero, is the
	// ops value at which the device cuts power on its own (CrashAt).
	ops     atomic.Uint64
	crashAt atomic.Uint64

	injectMu sync.Mutex
	inject   func(op Op) bool
	poisoned atomic.Bool

	// media counts injected sub-fail-stop faults (torn lines, bit flips,
	// bad lines); bad is the set of lines marked unreadable. Media damage
	// survives Crash (the module is still broken after a reboot) but not
	// RestoreDurable (which models installing a known-good image).
	media mediaCounters
	badMu sync.Mutex
	bad   map[uint32]struct{}
}

// mediaCounters accumulates media-fault injections for pmem_media_faults_*.
type mediaCounters struct {
	tornLines, tornWords, bitFlips, badLines atomic.Uint64
}

// opCounters is one scope's cumulative operation counts, plus the
// wall-clock nanoseconds spent inside Flush and Fence (including the
// profile's injected delays) so latency decomposition can charge stall
// time to the layer that issued it, not just count the operations.
type opCounters struct {
	writes, flushes, fences atomic.Uint64
	flushNS, fenceNS        atomic.Uint64
	_                       [24]byte // one scope per cache line
}

// OpHook observes completed device operations. n is the byte count for
// writes, the cache-line count for flushes, and 0 for fences.
type OpHook func(op Op, scope Scope, n uint64)

// Op identifies a device operation for fault injection and statistics.
type Op int

// Device operations observable by fault injectors. OpCrash never reaches
// injectors: it is the marker the flight recorder logs at the moment power
// is cut, separating pre-crash history from recovery traffic in a dump.
const (
	OpWrite Op = iota
	OpFlush
	OpFence
	OpCrash
	// OpTear, OpFlip, and OpBadLine are media-fault markers: like OpCrash
	// they never reach injectors, but they appear in flight-recorder dumps
	// so a torn or corrupted image explains itself.
	OpTear
	OpFlip
	OpBadLine
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	case OpFence:
		return "fence"
	case OpCrash:
		return "CRASH"
	case OpTear:
		return "TEAR"
	case OpFlip:
		return "FLIP"
	case OpBadLine:
		return "BADLINE"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// OpCounts is a point-in-time snapshot of write/flush/fence counts.
// FlushNanos and FenceNanos are the cumulative wall-clock time spent in
// Flush and Fence calls; the delta of two snapshots bounds how much of an
// interval was stalled on persistence.
type OpCounts struct {
	Writes, Flushes, Fences uint64
	FlushNanos, FenceNanos  uint64
}

// Stats is a point-in-time snapshot of the device's cumulative operation
// counters, total and broken down by attribution scope. Being a value, it
// cannot race with in-flight operations the way a live pointer would:
// two snapshots bracket a workload and their difference is exact.
type Stats struct {
	OpCounts
	ByScope [NumScopes]OpCounts
}

// ErrInjectedCrash is the panic value raised when a fault injector fires.
// Harnesses recover it, call Crash, and then exercise recovery.
var ErrInjectedCrash = errors.New("pmem: injected crash")

// Options configures a Device.
type Options struct {
	// Profile selects injected latencies. The zero value means NoDelay.
	Profile Profile
	// TrackCrash enables the shadow persistence layer needed by Crash and
	// fault injection. It costs one extra copy of the arena plus bookkeeping
	// on every Flush/Fence, so benchmarks leave it off.
	TrackCrash bool
	// FlightRecorder, when positive, retains about that many recent device
	// operations in a bounded ring so a crash report can name the exact
	// flush/fence history that led to the observed state. Zero disables it.
	FlightRecorder int
}

// New creates a device of the given size backed only by memory.
func New(size int, opts Options) *Device {
	if size <= 0 || size%CacheLineSize != 0 {
		panic(fmt.Sprintf("pmem: size %d must be a positive multiple of %d", size, CacheLineSize))
	}
	if opts.Profile.Name == "" {
		opts.Profile = NoDelay
	}
	d := &Device{
		prof:  opts.Profile,
		buf:   alignedBytes(size),
		track: opts.TrackCrash,
		dirty: make([]atomic.Uint64, (size/CacheLineSize+63)/64),
	}
	if d.track {
		d.shadow = make([]byte, size)
		d.pending = make(map[uint32][]byte)
	}
	if opts.FlightRecorder > 0 {
		d.flight.Store(obs.NewRecorder(opts.FlightRecorder))
	}
	return d
}

// OpenFile creates a device backed by the file at path. If the file exists
// its contents become both the live and the durable state (as after a clean
// reboot); otherwise the device starts zeroed and the file is created on
// Sync or Close.
func OpenFile(path string, size int, opts Options) (*Device, error) {
	d := New(size, opts)
	d.path = path
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if len(data) != size {
			return nil, fmt.Errorf("pmem: %s holds %d bytes, want %d", path, len(data), size)
		}
		copy(d.buf, data)
		if d.track {
			copy(d.shadow, data)
		}
	case os.IsNotExist(err):
		// Fresh pool file; nothing to load.
	default:
		return nil, fmt.Errorf("pmem: open %s: %w", path, err)
	}
	return d, nil
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return len(d.buf) }

// Profile returns the active latency profile.
func (d *Device) Profile() Profile { return d.prof }

// Stats returns a snapshot of the operation counters. Each per-scope word
// is read atomically; the totals are their sums.
func (d *Device) Stats() Stats {
	var st Stats
	for sc := Scope(0); sc < NumScopes; sc++ {
		c := OpCounts{
			Writes:     d.ctrs[sc].writes.Load(),
			Flushes:    d.ctrs[sc].flushes.Load(),
			Fences:     d.ctrs[sc].fences.Load(),
			FlushNanos: d.ctrs[sc].flushNS.Load(),
			FenceNanos: d.ctrs[sc].fenceNS.Load(),
		}
		st.ByScope[sc] = c
		st.Writes += c.Writes
		st.Flushes += c.Flushes
		st.Fences += c.Fences
		st.FlushNanos += c.FlushNanos
		st.FenceNanos += c.FenceNanos
	}
	return st
}

// SetOpHook installs fn, observing every completed Write, Flush, and
// Fence with its attribution scope. Pass nil to remove. The hook runs on
// the operating goroutine and must be cheap and non-blocking.
func (d *Device) SetOpHook(fn OpHook) {
	if fn == nil {
		d.hook.Store(nil)
		return
	}
	d.hook.Store(&fn)
}

// observe is the common per-operation tail: hook and flight recorder.
func (d *Device) observe(op Op, sc Scope, off, n uint64) {
	if h := d.hook.Load(); h != nil {
		(*h)(op, sc, n)
	}
	if f := d.flight.Load(); f != nil {
		f.Record(uint8(op), uint8(sc), off, n)
	}
}

// Bytes exposes the live contents for direct, DAX-style access. Callers
// that store through this slice must report the written range with
// MarkDirty for crash tracking to stay sound.
func (d *Device) Bytes() []byte { return d.buf }

// MarkDirty records that [off, off+n) has been stored to through Bytes.
// It is cheap (atomic bit sets) and must precede the Flush that persists
// the range.
func (d *Device) MarkDirty(off, n uint64) {
	d.bounds(off, n)
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	for line := first; line <= last; line++ {
		d.dirty[line/64].Or(1 << (line % 64))
	}
}

// Write copies data into the device at off and marks it dirty, charging the
// profile's write latency once. It models a small store done by library
// metadata code (allocator words, log headers). Aligned 8-byte lanes are
// stored word-atomically so lock-free seqlock readers (pool.ReadView)
// can race them without tearing — the emulated analogue of the hardware
// guarantee on aligned PM stores.
func (d *Device) Write(off uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	d.maybeInject(OpWrite)
	sc := CurrentScope()
	d.ctrs[sc].writes.Add(1)
	StoreBytes(d.buf, off, data)
	d.MarkDirty(off, uint64(len(data)))
	d.observe(OpWrite, sc, off, uint64(len(data)))
	d.prof.delay(d.prof.WriteDelay)
}

// Read copies n bytes at off into a fresh slice, charging read latency once.
func (d *Device) Read(off, n uint64) []byte {
	d.bounds(off, n)
	out := make([]byte, n)
	copy(out, d.buf[off:off+n])
	d.prof.delay(d.prof.ReadDelay)
	return out
}

// Flush issues a write-back for every cache line overlapping [off, off+n),
// like a CLWB loop. Flushed lines still need a Fence before they are
// guaranteed durable.
func (d *Device) Flush(off, n uint64) {
	if n == 0 {
		return
	}
	d.bounds(off, n)
	sc := CurrentScope()
	start := time.Now()
	first := off / CacheLineSize
	last := (off + n - 1) / CacheLineSize
	for line := first; line <= last; line++ {
		d.maybeInject(OpFlush)
		d.ctrs[sc].flushes.Add(1)
		word := &d.dirty[line/64]
		mask := uint64(1) << (line % 64)
		if word.Load()&mask != 0 {
			word.And(^mask)
			if d.track {
				d.stageLine(uint32(line))
			}
		}
		d.prof.delay(d.prof.FlushDelay)
	}
	d.ctrs[sc].flushNS.Add(uint64(time.Since(start)))
	d.observe(OpFlush, sc, off, last-first+1)
}

// Fence completes all outstanding write-backs, like SFENCE. After Fence
// returns, every previously Flushed line survives a crash.
func (d *Device) Fence() {
	d.maybeInject(OpFence)
	sc := CurrentScope()
	start := time.Now()
	d.ctrs[sc].fences.Add(1)
	if d.track {
		d.shadowMu.Lock()
		for line, data := range d.pending {
			copy(d.shadow[uint64(line)*CacheLineSize:], data)
		}
		clear(d.pending)
		d.shadowMu.Unlock()
	}
	d.observe(OpFence, sc, 0, 0)
	d.prof.delay(d.prof.FenceDelay)
	d.ctrs[sc].fenceNS.Add(uint64(time.Since(start)))
}

// Persist is the common Flush-then-Fence sequence.
func (d *Device) Persist(off, n uint64) {
	d.Flush(off, n)
	d.Fence()
}

func (d *Device) stageLine(line uint32) {
	start := uint64(line) * CacheLineSize
	cp := make([]byte, CacheLineSize)
	copy(cp, d.buf[start:start+CacheLineSize])
	d.shadowMu.Lock()
	d.pending[line] = cp
	d.shadowMu.Unlock()
}

// Crash simulates power loss: the live contents revert to the durable
// state, losing every store that was not flushed and fenced. It requires
// TrackCrash. The device remains usable, modelling the machine rebooting
// with the same PM module installed.
func (d *Device) Crash() {
	if !d.track {
		panic("pmem: Crash requires Options.TrackCrash")
	}
	d.markCrash()
	d.poisoned.Store(false) // the machine reboots
	d.shadowMu.Lock()
	defer d.shadowMu.Unlock()
	copy(d.buf, d.shadow)
	clear(d.pending)
	for i := range d.dirty {
		d.dirty[i].Store(0)
	}
}

// DurableSnapshot returns a copy of the bytes that would survive power
// loss right now (the fenced shadow). It requires TrackCrash. Paired with
// RestoreDurable it lets crash-exploration harnesses fork execution from
// a captured post-crash state without replaying the workload.
func (d *Device) DurableSnapshot() []byte {
	if !d.track {
		panic("pmem: DurableSnapshot requires Options.TrackCrash")
	}
	d.shadowMu.Lock()
	defer d.shadowMu.Unlock()
	return append([]byte(nil), d.shadow...)
}

// RestoreDurable rewinds the device to a previously captured durable
// image: live and durable contents both become data, all cache state
// (dirty lines, flushed-not-fenced lines) is dropped, any armed CrashAt
// is disarmed, and the device is unpoisoned — modelling a reboot with a
// known PM image installed. It requires TrackCrash.
func (d *Device) RestoreDurable(data []byte) {
	if !d.track {
		panic("pmem: RestoreDurable requires Options.TrackCrash")
	}
	if len(data) != len(d.buf) {
		panic(fmt.Sprintf("pmem: RestoreDurable of %d bytes into device of size %d", len(data), len(d.buf)))
	}
	d.crashAt.Store(0)
	d.poisoned.Store(false)
	d.badMu.Lock()
	d.bad = nil // a restored image means a known-good module
	d.badMu.Unlock()
	d.shadowMu.Lock()
	defer d.shadowMu.Unlock()
	copy(d.buf, data)
	copy(d.shadow, data)
	clear(d.pending)
	for i := range d.dirty {
		d.dirty[i].Store(0)
	}
}

// durableHashSeed makes DurableHash stable within the process, which is
// all crash-exploration pruning needs.
var durableHashSeed = maphash.MakeSeed()

// DurableHash returns a fast 64-bit hash of the durable image, used by
// exhaustive crash exploration to prune crash points whose surviving
// state has already been explored. Hashes are only comparable within one
// process. It requires TrackCrash.
func (d *Device) DurableHash() uint64 {
	if !d.track {
		panic("pmem: DurableHash requires Options.TrackCrash")
	}
	d.shadowMu.Lock()
	defer d.shadowMu.Unlock()
	return maphash.Bytes(durableHashSeed, d.shadow)
}

// CrashWithEviction simulates power loss where, additionally, some dirty
// cache lines happened to be evicted (and therefore persisted) before the
// crash, as real caches may do. Eviction is NOT line-atomic: persistent
// memory guarantees atomicity only for aligned 8-byte stores, so each
// 8-byte word of an evicted line persists independently with probability
// 1/2 under the given seed — a line may tear, surviving only in part.
// Software that is correct on real PM must tolerate any subset of words,
// so tests sweep seeds.
func (d *Device) CrashWithEviction(seed int64) {
	if !d.track {
		panic("pmem: CrashWithEviction requires Options.TrackCrash")
	}
	d.markCrash()
	d.poisoned.Store(false) // the machine reboots
	rng := rand.New(rand.NewSource(seed))
	d.shadowMu.Lock()
	defer d.shadowMu.Unlock()
	// Evicted dirty lines and flushed-not-fenced lines may each persist,
	// word by word.
	for w := range d.dirty {
		bits := d.dirty[w].Load()
		for b := 0; bits != 0; b++ {
			if bits&1 != 0 {
				line := uint32(w*64 + b)
				start := uint64(line) * CacheLineSize
				d.persistWordsLocked(line, uint8(rng.Intn(256)), d.buf[start:start+CacheLineSize])
			}
			bits >>= 1
		}
		d.dirty[w].Store(0)
	}
	lines := make([]uint32, 0, len(d.pending))
	for line := range d.pending {
		lines = append(lines, line)
	}
	slices.Sort(lines) // deterministic per seed: map order must not leak in
	for _, line := range lines {
		d.persistWordsLocked(line, uint8(rng.Intn(256)), d.pending[line])
	}
	clear(d.pending)
	copy(d.buf, d.shadow)
}

// SetFaultInjector installs fn, called before every Write, each cache
// line of every Flush, and every Fence — in every attribution scope,
// including ops issued by recovery itself (a crash during recovery is a
// legal power-loss point and harnesses must be able to exercise it). If
// fn returns true the device panics with ErrInjectedCrash; harnesses
// recover, call Crash, and exercise recovery. Pass nil to remove.
func (d *Device) SetFaultInjector(fn func(op Op) bool) {
	d.injectMu.Lock()
	d.inject = fn
	d.injectMu.Unlock()
}

// OpCount reports how many injection points the device has passed: one
// per Write, one per cache line of every Flush, one per Fence. The count
// is deterministic for a deterministic workload, which is what lets
// exhaustive crash exploration enumerate every interval [n, n+1) as a
// distinct crash point and replay to exactly op n.
func (d *Device) OpCount() uint64 { return d.ops.Load() }

// CrashAt arms a deterministic power cut: the device panics with
// ErrInjectedCrash the moment OpCount reaches n, without any injector
// callback in the loop. Zero disarms. The cut poisons the device exactly
// like a firing fault injector; harnesses recover the panic, call Crash
// (or CrashWithEviction), and exercise recovery. CrashAt and
// SetFaultInjector may be combined; CrashAt fires first.
func (d *Device) CrashAt(n uint64) { d.crashAt.Store(n) }

func (d *Device) maybeInject(op Op) {
	if d.poisoned.Load() {
		// Power is already off: nothing executes after a crash. Poisoning
		// keeps deferred cleanup in the program under test from touching the
		// media after the injected crash point, which real power loss makes
		// impossible.
		panic(ErrInjectedCrash)
	}
	n := d.ops.Add(1)
	if at := d.crashAt.Load(); at != 0 && n >= at {
		d.crashAt.Store(0)
		d.poisoned.Store(true)
		d.markCrash()
		panic(ErrInjectedCrash)
	}
	d.injectMu.Lock()
	fn := d.inject
	d.injectMu.Unlock()
	if fn != nil && fn(op) {
		d.poisoned.Store(true)
		d.markCrash()
		panic(ErrInjectedCrash)
	}
}

// markCrash drops a CRASH marker into the flight recorder so a dump
// separates the operations that preceded power loss from recovery traffic.
func (d *Device) markCrash() {
	if f := d.flight.Load(); f != nil {
		f.Record(uint8(OpCrash), uint8(CurrentScope()), 0, 0)
	}
}

// Sync writes the durable state to the backing file, if any. With crash
// tracking the shadow is written (only fenced data is durable); without it
// the live buffer is written, modelling a clean shutdown where caches are
// flushed by the platform (ADR/eADR).
func (d *Device) Sync() error {
	if d.path == "" {
		return nil
	}
	src := d.buf
	if d.track {
		d.shadowMu.Lock()
		src = append([]byte(nil), d.shadow...)
		d.shadowMu.Unlock()
	}
	if err := os.WriteFile(d.path, src, 0o644); err != nil {
		return fmt.Errorf("pmem: sync %s: %w", d.path, err)
	}
	return nil
}

// Close flushes everything (clean shutdown) and syncs the backing file.
func (d *Device) Close() error {
	if d.track {
		d.Flush(0, uint64(len(d.buf)))
		d.Fence()
	}
	return d.Sync()
}

func (d *Device) bounds(off, n uint64) {
	if off+n > uint64(len(d.buf)) || off+n < off {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside device of size %d", off, off+n, len(d.buf)))
	}
}
