package pmem

import (
	"fmt"
	"strings"

	"corundum/internal/obs"
)

// FlightEvent is one decoded entry from the device's flight recorder: a
// completed Write/Flush/Fence with its attribution scope, or the CRASH
// marker logged at the moment power was cut.
type FlightEvent struct {
	Seq   uint64 // global order, 1-based
	Op    Op
	Scope Scope
	Off   uint64 // byte offset (writes, flushes)
	Len   uint64 // bytes for writes, cache lines for flushes
}

// SetFlightRecorder installs a flight recorder retaining about capacity
// recent operations, replacing any existing one (and its history). A
// capacity of zero or less removes the recorder. Safe to call while the
// device is in use.
func (d *Device) SetFlightRecorder(capacity int) {
	if capacity <= 0 {
		d.flight.Store(nil)
		return
	}
	d.flight.Store(obs.NewRecorder(capacity))
}

// FlightEvents returns the retained flight-recorder history in order,
// oldest first, or nil when no recorder is installed.
func (d *Device) FlightEvents() []FlightEvent {
	f := d.flight.Load()
	if f == nil {
		return nil
	}
	raw := f.Snapshot()
	out := make([]FlightEvent, len(raw))
	for i, e := range raw {
		out[i] = FlightEvent{
			Seq:   e.Seq,
			Op:    Op(e.Kind),
			Scope: Scope(e.Scope),
			Off:   e.Off,
			Len:   e.Len,
		}
	}
	return out
}

// FormatFlight renders a flight-recorder dump, one event per line, for
// crash reports and test logs:
//
//	#104 write scope=journal off=4096 len=48
//	#105 flush scope=journal off=4096 lines=1
//	#106 fence scope=journal
//	#107 CRASH
func FormatFlight(events []FlightEvent) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "#%d %s", e.Seq, e.Op)
		if e.Op != OpCrash {
			fmt.Fprintf(&b, " scope=%s", e.Scope)
		}
		switch e.Op {
		case OpWrite:
			fmt.Fprintf(&b, " off=%d len=%d", e.Off, e.Len)
		case OpFlush:
			fmt.Fprintf(&b, " off=%d lines=%d", e.Off, e.Len)
		case OpTear:
			fmt.Fprintf(&b, " off=%d words=%#x", e.Off, e.Len)
		case OpFlip:
			fmt.Fprintf(&b, " off=%d bit=%d", e.Off, e.Len)
		case OpBadLine:
			fmt.Fprintf(&b, " off=%d len=%d", e.Off, e.Len)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
