package pmem

import (
	"fmt"
	"math/bits"
	"math/rand"
	"slices"
)

// This file is the media-fault engine: the device's model of what can go
// wrong BELOW fail-stop. A plain Crash leaves a clean prefix image; real
// persistent memory additionally
//
//   - tears unfenced stores: eviction persists an aligned 8-byte word at a
//     time, never a whole cache line atomically (CrashTorn, CrashTornMasks);
//   - rots at rest: a bit flips in data that was durably fenced long ago
//     (InjectBitFlip);
//   - loses whole lines: the module reports a range unreadable and returns
//     poison (MarkBadLine).
//
// Every injection is charged to MediaFaults counters and dropped into the
// flight recorder, so a corrupted image names the faults that produced it.

// WordSize is the atomicity grain of the emulated medium: aligned 8-byte
// stores persist atomically, nothing larger.
const WordSize = 8

// WordsPerLine is the number of atomic words in one cache line; torn-line
// masks carry one bit per word.
const WordsPerLine = CacheLineSize / WordSize

// TornLine names one at-risk cache line before a crash: Mask has bit i set
// when word i of the line differs between what would persist if the line
// were evicted and what survives a plain crash. Enumerating subsets of
// Mask enumerates every distinct torn outcome for the line.
type TornLine struct {
	Line uint32 // cache-line index
	Mask uint8  // at-risk words: bit i = word i differs from the fenced shadow
}

// MediaFaultCounts is a snapshot of cumulative injected media faults.
type MediaFaultCounts struct {
	TornLines uint64 // lines that persisted partially (a genuine tear)
	TornWords uint64 // 8-byte words persisted out of at-risk lines
	BitFlips  uint64 // at-rest single-bit corruptions injected
	BadLines  uint64 // lines marked unreadable
}

// MediaFaults returns a snapshot of the media-fault injection counters.
func (d *Device) MediaFaults() MediaFaultCounts {
	return MediaFaultCounts{
		TornLines: d.media.tornLines.Load(),
		TornWords: d.media.tornWords.Load(),
		BitFlips:  d.media.bitFlips.Load(),
		BadLines:  d.media.badLines.Load(),
	}
}

// TornCandidates reports, without crashing, every cache line whose content
// could differ after a crash depending on eviction: dirty lines (unflushed
// stores) and pending lines (flushed but not fenced), each with the mask
// of 8-byte words that differ from the fenced shadow. A harness enumerates
// torn schedules by picking a submask per line and passing the choice to
// CrashTornMasks. Requires TrackCrash.
func (d *Device) TornCandidates() []TornLine {
	if !d.track {
		panic("pmem: TornCandidates requires Options.TrackCrash")
	}
	d.shadowMu.Lock()
	defer d.shadowMu.Unlock()
	var out []TornLine
	seen := make(map[uint32]bool)
	for w := range d.dirty {
		bits := d.dirty[w].Load()
		for b := 0; bits != 0; b++ {
			if bits&1 != 0 {
				line := uint32(w*64 + b)
				start := uint64(line) * CacheLineSize
				if m := d.wordDiffLocked(line, d.buf[start:start+CacheLineSize]); m != 0 {
					out = append(out, TornLine{Line: line, Mask: m})
				}
				seen[line] = true
			}
			bits >>= 1
		}
	}
	for line, data := range d.pending {
		if seen[line] {
			continue // dirty again after the flush; the dirty entry covers it
		}
		if m := d.wordDiffLocked(line, data); m != 0 {
			out = append(out, TornLine{Line: line, Mask: m})
		}
	}
	slices.SortFunc(out, func(a, b TornLine) int { return int(a.Line) - int(b.Line) })
	return out
}

// CrashTorn simulates power loss with word-granularity tearing: every
// at-risk word (see TornCandidates) persists independently with
// probability 1/2 under the given seed. It is the seeded counterpart of
// CrashTornMasks for sweeps too large to enumerate. Requires TrackCrash.
func (d *Device) CrashTorn(seed int64) {
	if !d.track {
		panic("pmem: CrashTorn requires Options.TrackCrash")
	}
	rng := rand.New(rand.NewSource(seed))
	masks := make(map[uint32]uint8)
	for _, c := range d.TornCandidates() {
		masks[c.Line] = c.Mask & uint8(rng.Intn(256))
	}
	d.CrashTornMasks(masks)
}

// CrashTornMasks simulates power loss where exactly the chosen words
// persist: for each line→mask entry, word i of the line survives iff bit
// i is set (drawn from the latest store if the line is dirty, from the
// flushed copy if it is merely pending). Words of at-risk lines not named
// by masks are lost, like a plain Crash. Passing a mask for a line that is
// neither dirty nor pending is a no-op: fenced lines cannot tear.
// Requires TrackCrash.
func (d *Device) CrashTornMasks(masks map[uint32]uint8) {
	if !d.track {
		panic("pmem: CrashTornMasks requires Options.TrackCrash")
	}
	d.markCrash()
	d.poisoned.Store(false) // the machine reboots
	d.shadowMu.Lock()
	defer d.shadowMu.Unlock()
	lines := make([]uint32, 0, len(masks))
	for line := range masks {
		lines = append(lines, line)
	}
	slices.Sort(lines)
	for _, line := range lines {
		start := uint64(line) * CacheLineSize
		if start+CacheLineSize > uint64(len(d.buf)) {
			panic(fmt.Sprintf("pmem: CrashTornMasks line %d outside device", line))
		}
		src := d.buf[start : start+CacheLineSize]
		if data, ok := d.pending[line]; ok && !d.lineDirtyLocked(line) {
			src = data
		}
		d.persistWordsLocked(line, masks[line], src)
	}
	clear(d.pending)
	for i := range d.dirty {
		d.dirty[i].Store(0)
	}
	copy(d.buf, d.shadow)
}

// persistWordsLocked copies the masked 8-byte words of src (one cache
// line's worth) into the shadow at line, counting genuine tears. Caller
// holds shadowMu.
func (d *Device) persistWordsLocked(line uint32, mask uint8, src []byte) {
	diff := d.wordDiffLocked(line, src)
	applied := mask & diff
	if applied == 0 {
		return // nothing the crash outcome depends on survived
	}
	start := uint64(line) * CacheLineSize
	for i := 0; i < WordsPerLine; i++ {
		if applied&(1<<i) != 0 {
			copy(d.shadow[start+uint64(i)*WordSize:start+uint64(i+1)*WordSize], src[i*WordSize:(i+1)*WordSize])
		}
	}
	d.media.tornWords.Add(uint64(bits.OnesCount8(applied)))
	if applied != diff {
		// The line persisted only in part: a tear the flight recorder
		// should explain.
		d.media.tornLines.Add(1)
		if f := d.flight.Load(); f != nil {
			f.Record(uint8(OpTear), uint8(CurrentScope()), start, uint64(applied))
		}
	}
}

// wordDiffLocked returns the mask of 8-byte words where src (one line's
// candidate content) differs from the fenced shadow. Caller holds shadowMu.
func (d *Device) wordDiffLocked(line uint32, src []byte) uint8 {
	start := uint64(line) * CacheLineSize
	var m uint8
	for i := 0; i < WordsPerLine; i++ {
		a := src[i*WordSize : (i+1)*WordSize]
		b := d.shadow[start+uint64(i)*WordSize : start+uint64(i+1)*WordSize]
		if string(a) != string(b) {
			m |= 1 << i
		}
	}
	return m
}

func (d *Device) lineDirtyLocked(line uint32) bool {
	return d.dirty[line/64].Load()&(1<<(line%64)) != 0
}

// InjectBitFlip flips one bit of the byte at off in both the live and the
// durable image, modelling at-rest corruption (bit rot) of data that was
// already fenced. The flip is recorded in the flight recorder and counted
// in MediaFaults; detection is the software's job.
func (d *Device) InjectBitFlip(off uint64, bit uint8) {
	d.bounds(off, 1)
	m := byte(1) << (bit % 8)
	d.buf[off] ^= m
	if d.track {
		d.shadowMu.Lock()
		d.shadow[off] ^= m
		d.shadowMu.Unlock()
	}
	d.media.bitFlips.Add(1)
	if f := d.flight.Load(); f != nil {
		f.Record(uint8(OpFlip), uint8(CurrentScope()), off, uint64(bit%8))
	}
}

// MarkBadLine marks one cache line unreadable: its bytes are scrambled in
// both the live and durable image (the poison pattern a failed media read
// returns) and the line joins BadLines so scrub passes can quarantine the
// range. Bad lines survive Crash — the module is still damaged after a
// reboot — but are cleared by RestoreDurable.
func (d *Device) MarkBadLine(line uint32) {
	start := uint64(line) * CacheLineSize
	d.bounds(start, CacheLineSize)
	for i := start; i < start+CacheLineSize; i++ {
		d.buf[i] ^= 0xA5
	}
	if d.track {
		d.shadowMu.Lock()
		for i := start; i < start+CacheLineSize; i++ {
			d.shadow[i] ^= 0xA5
		}
		d.shadowMu.Unlock()
	}
	d.badMu.Lock()
	if d.bad == nil {
		d.bad = make(map[uint32]struct{})
	}
	d.bad[line] = struct{}{}
	d.badMu.Unlock()
	d.media.badLines.Add(1)
	if f := d.flight.Load(); f != nil {
		f.Record(uint8(OpBadLine), uint8(CurrentScope()), start, CacheLineSize)
	}
}

// BadLines returns the sorted cache-line indexes currently marked
// unreadable.
func (d *Device) BadLines() []uint32 {
	d.badMu.Lock()
	defer d.badMu.Unlock()
	out := make([]uint32, 0, len(d.bad))
	for line := range d.bad {
		out = append(out, line)
	}
	slices.Sort(out)
	return out
}
