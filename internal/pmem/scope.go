package pmem

import (
	"sync"

	"corundum/internal/gid"
)

// Scope labels which subsystem a device operation is performed on behalf
// of, so flush/fence traffic can be attributed the way the paper's Fig. 9
// breaks costs down: undo logging (journal), the allocator's redo logging,
// user data persistence, and crash recovery.
//
// The scope is a property of the calling goroutine's current code path,
// not of the device: journal and allocator code push their scope around
// their device operations (EnterScope/ExitScope), and everything else —
// DAX-style stores persisted at commit — defaults to ScopeUserData.
// Scopes nest; the innermost wins (an allocation performed during
// recovery is allocator-redo traffic).
type Scope uint8

// Attribution scopes, in render order.
const (
	ScopeUserData  Scope = iota // default: user data flush/fence at commit
	ScopeJournal                // undo-log appends and state-word updates
	ScopeAllocRedo              // buddy-allocator redo-log commit/apply
	ScopeRecovery               // attach-time rollback/roll-forward
	NumScopes
)

func (s Scope) String() string {
	switch s {
	case ScopeUserData:
		return "user-data"
	case ScopeJournal:
		return "journal"
	case ScopeAllocRedo:
		return "alloc-redo"
	case ScopeRecovery:
		return "recovery"
	default:
		return "unknown"
	}
}

// The scope table maps goroutine identity to its current scope. It is
// sharded so concurrent transactions do not serialize on one lock; a
// goroutine outside any Enter/Exit pair has no entry and reads as
// ScopeUserData, which keeps the table small (only goroutines currently
// inside library code appear).
const scopeShards = 64

type scopeShard struct {
	mu sync.Mutex
	m  map[uint64]Scope
	_  [24]byte // keep shards off each other's cache lines
}

var scopeTab [scopeShards]scopeShard

func scopeShardFor(g uint64) *scopeShard {
	return &scopeTab[(g*0x9E3779B97F4A7C15)>>(64-6)]
}

// EnterScope sets the calling goroutine's attribution scope and returns
// the previous one. Callers must restore it with ExitScope (typically via
// defer), pairing every Enter with an Exit even on panic paths so an
// injected crash cannot leak a stale label.
func EnterScope(s Scope) (prev Scope) {
	g := gid.ID()
	sh := scopeShardFor(g)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]Scope, 8)
	}
	prev, ok := sh.m[g]
	if !ok {
		prev = ScopeUserData
	}
	sh.m[g] = s
	sh.mu.Unlock()
	return prev
}

// ExitScope restores the scope returned by the matching EnterScope. When
// that restores the default, the goroutine's entry is removed so the
// table never outgrows the set of goroutines currently inside the
// library.
func ExitScope(prev Scope) {
	g := gid.ID()
	sh := scopeShardFor(g)
	sh.mu.Lock()
	if prev == ScopeUserData {
		delete(sh.m, g)
	} else {
		sh.m[g] = prev
	}
	sh.mu.Unlock()
}

// CurrentScope reports the calling goroutine's attribution scope.
func CurrentScope() Scope {
	g := gid.ID()
	sh := scopeShardFor(g)
	sh.mu.Lock()
	s, ok := sh.m[g]
	sh.mu.Unlock()
	if !ok {
		return ScopeUserData
	}
	return s
}
