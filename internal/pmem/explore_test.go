package pmem

import (
	"testing"
)

// opSequence runs a small deterministic workload and returns the op count
// it consumed.
func opSequence(d *Device) {
	d.Write(0, []byte{1, 2, 3})       // 1 op
	d.Flush(0, 2*CacheLineSize)       // 2 ops (one per line)
	d.Fence()                         // 1 op
	d.Write(CacheLineSize, []byte{4}) // 1 op
	d.Persist(CacheLineSize, 1)       // 2 ops (flush one line + fence)
}

func TestOpCountDeterministic(t *testing.T) {
	d1 := newTracked(t, 4096)
	d2 := newTracked(t, 4096)
	opSequence(d1)
	opSequence(d2)
	if d1.OpCount() != d2.OpCount() {
		t.Fatalf("op counts diverged: %d vs %d", d1.OpCount(), d2.OpCount())
	}
	if got := d1.OpCount(); got != 7 {
		t.Fatalf("op count = %d, want 7 (write, 2 flush lines, fence, write, flush line, fence)", got)
	}
}

func TestCrashAtFiresAtExactOp(t *testing.T) {
	for n := uint64(1); n <= 7; n++ {
		d := newTracked(t, 4096)
		d.CrashAt(n)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != ErrInjectedCrash {
						panic(r)
					}
					crashed = true
				}
			}()
			opSequence(d)
		}()
		if !crashed {
			t.Fatalf("CrashAt(%d) did not fire", n)
		}
		if got := d.OpCount(); got != n {
			t.Fatalf("CrashAt(%d): op count at cut = %d", n, got)
		}
		// The device is poisoned until the machine "reboots".
		func() {
			defer func() {
				if recover() != ErrInjectedCrash {
					t.Errorf("post-crash op did not panic with ErrInjectedCrash")
				}
			}()
			d.Fence()
		}()
		d.Crash()
		d.Fence() // rebooted: ops work again
	}
}

func TestCrashAtZeroDisarms(t *testing.T) {
	d := newTracked(t, 4096)
	d.CrashAt(3)
	d.CrashAt(0)
	opSequence(d) // must not panic
}

func TestRestoreDurableRewindsEverything(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{0xAA})
	d.Persist(0, 1)
	snap := d.DurableSnapshot()
	h0 := d.DurableHash()

	// Diverge: durable state changes, cache state accumulates, a crash is
	// armed.
	d.Write(0, []byte{0xBB})
	d.Persist(0, 1)
	d.Write(64, []byte{0xCC}) // dirty, unflushed
	d.CrashAt(1 << 30)
	if d.DurableHash() == h0 {
		t.Fatal("durable hash did not change after a new persist")
	}

	d.RestoreDurable(snap)
	if got := d.Read(0, 1)[0]; got != 0xAA {
		t.Fatalf("live byte after restore = %#x, want 0xAA", got)
	}
	if d.DurableHash() != h0 {
		t.Fatal("durable hash after restore differs from snapshot's")
	}
	// The dirty line from before the restore must be gone: a crash now
	// keeps the restored image exactly.
	d.Crash()
	if got := d.Read(64, 1)[0]; got != 0 {
		t.Fatalf("stale dirty line survived restore+crash: %#x", got)
	}
	opSequence(d) // the armed CrashAt was disarmed by the restore
}

func TestInjectorFiresDuringRecoveryScope(t *testing.T) {
	d := newTracked(t, 4096)
	prev := EnterScope(ScopeRecovery)
	defer ExitScope(prev)
	fired := false
	d.SetFaultInjector(func(op Op) bool {
		fired = true
		return false
	})
	defer d.SetFaultInjector(nil)
	d.Write(0, []byte{1})
	if !fired {
		t.Fatal("fault injector did not observe an op issued in ScopeRecovery")
	}
}
