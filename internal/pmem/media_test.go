package pmem

import (
	"bytes"
	"strings"
	"testing"
)

// Regression for the eviction granularity fix: real PM persists aligned
// 8-byte words atomically, never whole cache lines, so an evicted dirty
// line may tear. Sweeping seeds must produce at least one outcome where a
// single line survives only in part — word-wise old/new mixed — which the
// old whole-line model could never produce.
func TestCrashWithEvictionTearsAtWordGranularity(t *testing.T) {
	newline := bytes.Repeat([]byte{0xFF}, CacheLineSize)
	torn := false
	for seed := int64(1); seed <= 64 && !torn; seed++ {
		d := newTracked(t, 4096)
		d.Write(0, newline) // dirty: every word differs from the zero shadow
		d.CrashWithEviction(seed)
		got := d.Read(0, CacheLineSize)
		var survived, lost int
		for w := 0; w < WordsPerLine; w++ {
			word := got[w*WordSize : (w+1)*WordSize]
			switch {
			case bytes.Equal(word, newline[:WordSize]):
				survived++
			case bytes.Equal(word, make([]byte, WordSize)):
				lost++
			default:
				t.Fatalf("seed %d: word %d torn WITHIN the 8-byte grain: %x", seed, w, word)
			}
		}
		if survived > 0 && lost > 0 {
			torn = true
			if d.MediaFaults().TornLines == 0 {
				t.Fatalf("seed %d: line tore (%d/%d words) but TornLines counter is 0", seed, survived, WordsPerLine)
			}
		}
	}
	if !torn {
		t.Fatal("no seed in 1..64 tore a fully-dirty line — eviction still looks line-atomic")
	}
}

func TestTornCandidatesAndMasks(t *testing.T) {
	d := newTracked(t, 4096)
	old := bytes.Repeat([]byte{0x11}, CacheLineSize)
	d.Write(0, old)
	d.Persist(0, CacheLineSize)
	// Overwrite words 0, 2, 5 without fencing.
	d.Write(0*WordSize, []byte{0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA})
	d.Write(2*WordSize, []byte{0xBB, 0xBB, 0xBB, 0xBB, 0xBB, 0xBB, 0xBB, 0xBB})
	d.Write(5*WordSize, []byte{0xCC, 0xCC, 0xCC, 0xCC, 0xCC, 0xCC, 0xCC, 0xCC})

	cands := d.TornCandidates()
	if len(cands) != 1 || cands[0].Line != 0 {
		t.Fatalf("candidates = %v, want exactly line 0", cands)
	}
	if cands[0].Mask != 0b00100101 {
		t.Fatalf("candidate mask = %#b, want 0b00100101", cands[0].Mask)
	}

	// Persist only word 2: the crash image must hold new word 2, old
	// words 0 and 5.
	d.CrashTornMasks(map[uint32]uint8{0: 1 << 2})
	got := d.Read(0, CacheLineSize)
	if !bytes.Equal(got[2*WordSize:3*WordSize], bytes.Repeat([]byte{0xBB}, WordSize)) {
		t.Fatalf("masked word 2 did not persist: %x", got[2*WordSize:3*WordSize])
	}
	if !bytes.Equal(got[0:WordSize], old[:WordSize]) || !bytes.Equal(got[5*WordSize:6*WordSize], old[:WordSize]) {
		t.Fatal("unmasked words persisted despite tear mask")
	}
	mf := d.MediaFaults()
	if mf.TornLines != 1 || mf.TornWords != 1 {
		t.Fatalf("MediaFaults = %+v, want 1 torn line / 1 torn word", mf)
	}
}

func TestCrashTornMasksPersistsFlushedCopy(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	d.Flush(0, WordSize) // pending: flushed, not fenced
	cands := d.TornCandidates()
	if len(cands) != 1 || cands[0].Mask != 1 {
		t.Fatalf("candidates = %v, want line 0 mask 0b1", cands)
	}
	d.CrashTornMasks(map[uint32]uint8{0: 1})
	if got := d.Read(0, 1)[0]; got != 1 {
		t.Fatalf("flushed word did not persist under mask: %#x", got)
	}
}

func TestCrashTornMasksFencedLineIsNoop(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{7})
	d.Persist(0, 1)
	d.CrashTornMasks(map[uint32]uint8{1: 0xFF}) // line 1 is clean: fenced lines cannot tear
	if got := d.Read(0, 1)[0]; got != 7 {
		t.Fatal("persisted data lost")
	}
	if got := d.Read(CacheLineSize, 1)[0]; got != 0 {
		t.Fatal("clean line changed under torn mask")
	}
}

func TestInjectBitFlipCorruptsDurableImage(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{0x0F})
	d.Persist(0, 1)
	d.InjectBitFlip(0, 4)
	if got := d.Read(0, 1)[0]; got != 0x1F {
		t.Fatalf("live byte = %#x, want 0x1F", got)
	}
	d.Crash()
	if got := d.Read(0, 1)[0]; got != 0x1F {
		t.Fatalf("flip did not survive crash: %#x (at-rest corruption must be durable)", got)
	}
	if d.MediaFaults().BitFlips != 1 {
		t.Fatal("BitFlips counter not charged")
	}
}

func TestMarkBadLineScramblesAndSurvivesCrash(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(CacheLineSize, bytes.Repeat([]byte{0x11}, CacheLineSize))
	d.Persist(CacheLineSize, CacheLineSize)
	d.MarkBadLine(1)
	if got := d.Read(CacheLineSize, 1)[0]; got == 0x11 {
		t.Fatal("bad line still readable as original data")
	}
	d.Crash()
	if lines := d.BadLines(); len(lines) != 1 || lines[0] != 1 {
		t.Fatalf("BadLines after crash = %v, want [1]", lines)
	}
	// Installing a known-good image repairs the module in this model.
	d.RestoreDurable(make([]byte, 4096))
	if len(d.BadLines()) != 0 {
		t.Fatal("RestoreDurable did not clear bad lines")
	}
	if d.MediaFaults().BadLines != 1 {
		t.Fatal("BadLines counter not charged")
	}
}

func TestMediaFaultsAppearInFlightRecorder(t *testing.T) {
	d := newTracked(t, 4096)
	d.SetFlightRecorder(64)
	d.Write(0, bytes.Repeat([]byte{0xEE}, CacheLineSize))
	d.CrashTornMasks(map[uint32]uint8{0: 0b1})
	d.InjectBitFlip(100, 0)
	d.MarkBadLine(2)
	dump := FormatFlight(d.FlightEvents())
	for _, want := range []string{"TEAR", "FLIP", "BADLINE"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("flight dump missing %s marker:\n%s", want, dump)
		}
	}
}
