package pmem

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newTracked(t *testing.T, size int) *Device {
	t.Helper()
	return New(size, Options{TrackCrash: true})
}

func TestWriteIsVisibleImmediately(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(100, []byte{1, 2, 3})
	got := d.Read(100, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("read back %v, want [1 2 3]", got)
	}
}

func TestUnflushedWriteLostOnCrash(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{0xAA})
	d.Crash()
	if got := d.Read(0, 1)[0]; got != 0 {
		t.Fatalf("unflushed write survived crash: %#x", got)
	}
}

func TestFlushedButUnfencedWriteLostOnCrash(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{0xAA})
	d.Flush(0, 1)
	d.Crash()
	if got := d.Read(0, 1)[0]; got != 0 {
		t.Fatalf("unfenced write survived crash: %#x", got)
	}
}

func TestPersistedWriteSurvivesCrash(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{0xAA})
	d.Persist(0, 1)
	d.Crash()
	if got := d.Read(0, 1)[0]; got != 0xAA {
		t.Fatalf("persisted write lost on crash: %#x", got)
	}
}

func TestPersistCoversWholeRange(t *testing.T) {
	d := newTracked(t, 4096)
	// A range spanning three cache lines.
	data := make([]byte, 3*CacheLineSize)
	for i := range data {
		data[i] = byte(i)
	}
	d.Write(32, data)
	d.Persist(32, uint64(len(data)))
	d.Crash()
	got := d.Read(32, uint64(len(data)))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], data[i])
		}
	}
}

func TestDirectStoresNeedMarkDirty(t *testing.T) {
	d := newTracked(t, 4096)
	d.Bytes()[10] = 0x42
	d.MarkDirty(10, 1)
	d.Persist(10, 1)
	d.Crash()
	if got := d.Read(10, 1)[0]; got != 0x42 {
		t.Fatalf("marked direct store lost: %#x", got)
	}
}

func TestLaterWriteToFlushedLineNotDurable(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{1})
	d.Flush(0, 1)
	d.Write(0, []byte{2}) // re-dirties after flush, before fence
	d.Fence()
	d.Crash()
	// The flushed value 1 is durable; the post-flush store of 2 is not.
	if got := d.Read(0, 1)[0]; got != 1 {
		t.Fatalf("got %d, want the flushed value 1", got)
	}
}

func TestCrashIsRepeatable(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{7})
	d.Persist(0, 1)
	d.Write(0, []byte{9})
	d.Crash()
	if got := d.Read(0, 1)[0]; got != 7 {
		t.Fatalf("after first crash: %d", got)
	}
	d.Write(0, []byte{9})
	d.Crash()
	if got := d.Read(0, 1)[0]; got != 7 {
		t.Fatalf("after second crash: %d", got)
	}
}

func TestStatsCount(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{1})
	d.Flush(0, 1)
	d.Fence()
	if n := d.Stats().Writes; n != 1 {
		t.Errorf("writes = %d, want 1", n)
	}
	if n := d.Stats().Flushes; n != 1 {
		t.Errorf("flushes = %d, want 1", n)
	}
	if n := d.Stats().Fences; n != 1 {
		t.Errorf("fences = %d, want 1", n)
	}
}

func TestFlushChargesPerLine(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, make([]byte, 4*CacheLineSize))
	d.Flush(0, 4*CacheLineSize)
	if n := d.Stats().Flushes; n != 4 {
		t.Errorf("flushes = %d, want 4", n)
	}
}

func TestFaultInjectorFiresAndCrashRecovers(t *testing.T) {
	d := newTracked(t, 4096)
	d.Write(0, []byte{5})
	d.Persist(0, 1)

	fired := false
	d.SetFaultInjector(func(op Op) bool { return op == OpFlush })
	func() {
		defer func() {
			if r := recover(); r != ErrInjectedCrash {
				t.Fatalf("recovered %v, want ErrInjectedCrash", r)
			}
			fired = true
		}()
		d.Write(0, []byte{6})
		d.Flush(0, 1)
	}()
	if !fired {
		t.Fatal("injector did not fire")
	}
	d.SetFaultInjector(nil)
	d.Crash()
	if got := d.Read(0, 1)[0]; got != 5 {
		t.Fatalf("post-crash value %d, want 5", got)
	}
}

func TestFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool")

	d, err := OpenFile(path, 4096, Options{TrackCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	d.Write(64, []byte("hello"))
	d.Persist(64, 5)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFile(path, 4096, Options{TrackCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(d2.Read(64, 5)); got != "hello" {
		t.Fatalf("reloaded %q, want %q", got, "hello")
	}
}

func TestFileSizeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool")
	if err := os.WriteFile(path, make([]byte, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 4096, Options{}); err == nil {
		t.Fatal("size mismatch not rejected")
	}
}

func TestSyncWritesOnlyDurableState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool")
	d, err := OpenFile(path, 4096, Options{TrackCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	d.Write(0, []byte{1})
	d.Persist(0, 1)
	d.Write(1, []byte{2}) // never flushed
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 {
		t.Errorf("durable byte missing from file")
	}
	if data[1] != 0 {
		t.Errorf("unflushed byte leaked to file: %d", data[1])
	}
}

func TestCrashWithEvictionPersistsSubset(t *testing.T) {
	// Whatever the seed, the surviving state must be: persisted data intact,
	// and each dirty line either old or new, never torn within our writes.
	for seed := int64(0); seed < 8; seed++ {
		d := newTracked(t, 4096)
		d.Write(0, []byte{1})
		d.Persist(0, 1)
		d.Write(CacheLineSize, []byte{9}) // dirty, maybe evicted
		d.CrashWithEviction(seed)
		if got := d.Read(0, 1)[0]; got != 1 {
			t.Fatalf("seed %d: persisted byte lost", seed)
		}
		if got := d.Read(CacheLineSize, 1)[0]; got != 0 && got != 9 {
			t.Fatalf("seed %d: torn value %d", seed, got)
		}
	}
}

func TestBoundsPanics(t *testing.T) {
	d := newTracked(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	d.Write(4095, []byte{1, 2})
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpFlush.String() != "flush" || OpFence.String() != "fence" {
		t.Fatal("unexpected Op strings")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op should still format")
	}
}

// Property: any sequence of persisted writes survives a crash byte-for-byte.
func TestPersistedWritesAlwaysSurvive(t *testing.T) {
	f := func(writes []struct {
		Off  uint16
		Data []byte
	}) bool {
		d := New(1<<16, Options{TrackCrash: true})
		want := make([]byte, 1<<16)
		for _, w := range writes {
			if len(w.Data) == 0 {
				continue
			}
			data := w.Data
			if int(w.Off)+len(data) > len(want) {
				data = data[:len(want)-int(w.Off)]
			}
			if len(data) == 0 {
				continue
			}
			d.Write(uint64(w.Off), data)
			d.Persist(uint64(w.Off), uint64(len(data)))
			copy(want[w.Off:], data)
		}
		d.Crash()
		got := d.Bytes()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
