package pmem

import (
	"strings"
	"sync"
	"testing"
)

func TestScopeNesting(t *testing.T) {
	if got := CurrentScope(); got != ScopeUserData {
		t.Fatalf("default scope = %v, want user-data", got)
	}
	prev := EnterScope(ScopeJournal)
	if got := CurrentScope(); got != ScopeJournal {
		t.Fatalf("scope = %v, want journal", got)
	}
	inner := EnterScope(ScopeAllocRedo)
	if got := CurrentScope(); got != ScopeAllocRedo {
		t.Fatalf("nested scope = %v, want alloc-redo (innermost wins)", got)
	}
	ExitScope(inner)
	if got := CurrentScope(); got != ScopeJournal {
		t.Fatalf("after inner exit scope = %v, want journal", got)
	}
	ExitScope(prev)
	if got := CurrentScope(); got != ScopeUserData {
		t.Fatalf("after outer exit scope = %v, want user-data", got)
	}
}

func TestScopeIsPerGoroutine(t *testing.T) {
	prev := EnterScope(ScopeRecovery)
	defer ExitScope(prev)
	done := make(chan Scope)
	go func() { done <- CurrentScope() }()
	if got := <-done; got != ScopeUserData {
		t.Fatalf("other goroutine sees scope %v, want user-data", got)
	}
}

func TestStatsAttributesByScope(t *testing.T) {
	d := New(4096, Options{})
	d.Write(0, []byte{1})
	d.Flush(0, 1)
	d.Fence()
	prev := EnterScope(ScopeJournal)
	d.Write(64, []byte{2})
	d.Flush(64, 1)
	d.Fence()
	d.Fence()
	ExitScope(prev)

	st := d.Stats()
	counts := func(c OpCounts) OpCounts {
		c.FlushNanos, c.FenceNanos = 0, 0
		return c
	}
	if got := counts(st.ByScope[ScopeUserData]); got != (OpCounts{Writes: 1, Flushes: 1, Fences: 1}) {
		t.Errorf("user-data counts = %+v", got)
	}
	if got := counts(st.ByScope[ScopeJournal]); got != (OpCounts{Writes: 1, Flushes: 1, Fences: 2}) {
		t.Errorf("journal counts = %+v", got)
	}
	if st.Writes != 2 || st.Flushes != 2 || st.Fences != 3 {
		t.Errorf("totals = %d/%d/%d, want 2/2/3", st.Writes, st.Flushes, st.Fences)
	}
	// Wall-clock time inside Flush/Fence is charged to the issuing scope
	// and summed into the totals.
	if st.ByScope[ScopeJournal].FenceNanos == 0 || st.ByScope[ScopeUserData].FenceNanos == 0 {
		t.Errorf("fence nanos not attributed: %+v", st)
	}
	if st.FenceNanos != st.ByScope[ScopeUserData].FenceNanos+st.ByScope[ScopeJournal].FenceNanos {
		t.Errorf("fence nanos total %d != sum of scopes", st.FenceNanos)
	}
}

func TestStatsIsSnapshot(t *testing.T) {
	d := New(4096, Options{})
	d.Write(0, []byte{1})
	st := d.Stats()
	d.Write(64, []byte{2})
	d.Write(128, []byte{3})
	if st.Writes != 1 {
		t.Fatalf("snapshot mutated: writes = %d, want 1", st.Writes)
	}
	if now := d.Stats().Writes; now != 3 {
		t.Fatalf("live count = %d, want 3", now)
	}
}

func TestOpHook(t *testing.T) {
	d := New(4096, Options{})
	type call struct {
		op    Op
		scope Scope
		n     uint64
	}
	var mu sync.Mutex
	var calls []call
	d.SetOpHook(func(op Op, sc Scope, n uint64) {
		mu.Lock()
		calls = append(calls, call{op, sc, n})
		mu.Unlock()
	})
	prev := EnterScope(ScopeAllocRedo)
	d.Write(0, []byte{1, 2, 3})
	ExitScope(prev)
	d.Persist(0, 3)
	d.SetOpHook(nil)
	d.Fence() // after removal: not observed

	want := []call{
		{OpWrite, ScopeAllocRedo, 3},
		{OpFlush, ScopeUserData, 1},
		{OpFence, ScopeUserData, 0},
	}
	if len(calls) != len(want) {
		t.Fatalf("hook calls = %+v, want %+v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d = %+v, want %+v", i, calls[i], want[i])
		}
	}
}

func TestFlightRecorderRecordsAndFormats(t *testing.T) {
	d := New(4096, Options{FlightRecorder: 64})
	prev := EnterScope(ScopeJournal)
	d.Write(128, []byte{1, 2})
	d.Flush(128, 2)
	d.Fence()
	ExitScope(prev)

	evs := d.FlightEvents()
	if len(evs) != 3 {
		t.Fatalf("flight events = %+v, want 3", evs)
	}
	dump := FormatFlight(evs)
	for _, want := range []string{
		"write scope=journal off=128 len=2",
		"flush scope=journal off=128 lines=1",
		"fence scope=journal",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestFlightRecorderMarksInjectedCrash(t *testing.T) {
	d := New(4096, Options{TrackCrash: true, FlightRecorder: 64})
	d.Write(0, []byte{1})
	d.Persist(0, 1)

	// Cut power at the next fence; the flight recorder must show the full
	// pre-crash history followed by the CRASH marker, so the dump names
	// the last fence that completed before the cut.
	d.SetFaultInjector(func(op Op) bool { return op == OpFence })
	func() {
		defer func() {
			if recover() != ErrInjectedCrash {
				t.Fatal("injector did not fire")
			}
		}()
		d.Write(64, []byte{2})
		d.Persist(64, 1)
	}()
	d.SetFaultInjector(nil)
	d.Crash()

	evs := d.FlightEvents()
	var lastFence, crashAt = -1, -1
	for i, e := range evs {
		switch e.Op {
		case OpFence:
			if crashAt == -1 {
				lastFence = i
			}
		case OpCrash:
			if crashAt == -1 {
				crashAt = i
			}
		}
	}
	if crashAt == -1 {
		t.Fatalf("no CRASH marker in dump:\n%s", FormatFlight(evs))
	}
	if lastFence == -1 || lastFence > crashAt {
		t.Fatalf("no fence before the crash marker:\n%s", FormatFlight(evs))
	}
	if !strings.Contains(FormatFlight(evs), "CRASH") {
		t.Fatalf("formatted dump lacks CRASH:\n%s", FormatFlight(evs))
	}
}

func TestSetFlightRecorderInstallsAndRemoves(t *testing.T) {
	d := New(4096, Options{})
	if evs := d.FlightEvents(); evs != nil {
		t.Fatalf("no recorder installed, got events %+v", evs)
	}
	d.SetFlightRecorder(16)
	d.Write(0, []byte{1})
	if evs := d.FlightEvents(); len(evs) != 1 {
		t.Fatalf("events = %+v, want 1", evs)
	}
	d.SetFlightRecorder(0)
	if evs := d.FlightEvents(); evs != nil {
		t.Fatalf("recorder removed, got events %+v", evs)
	}
}
