// Package pmem emulates a byte-addressable persistent memory device.
//
// The emulation reproduces the pieces of real PM hardware that matter for
// crash-consistent software: a volatile CPU-cache layer in front of the
// persistent media, explicit cache-line write-back (Flush, modelling
// CLWB/CLFLUSHOPT), store fences (Fence, modelling SFENCE), media latency
// profiles, and crash injection that discards everything not yet fenced to
// the media. The paper's testbed used Intel Optane DC DIMMs and
// battery-backed DRAM; the OptaneDC and DRAM profiles reproduce that
// latency asymmetry so benchmark *shapes* carry over.
package pmem

import (
	"time"
)

// CacheLineSize is the granularity of Flush, matching x86 cache lines.
const CacheLineSize = 64

// Profile describes the latency behaviour of a persistent-memory medium.
// Latencies are injected with a calibrated spin so that sub-microsecond
// values remain meaningful (time.Sleep cannot sleep for 100ns).
//
// The cost model follows how the instructions actually behave: stores hit
// the cache and are nearly free; CLWB/CLFLUSHOPT issue cheaply and the
// write-backs pipeline; the fence is where the CPU stalls waiting for
// outstanding write-backs to reach the persistence domain. Charging the
// drain at Fence (rather than per line) keeps multi-line flush sequences
// as cheap relative to single-line ones as they are on real hardware.
type Profile struct {
	// Name identifies the profile in benchmark output ("OptaneDC", "DRAM").
	Name string
	// ReadDelay is added per explicit ReadAt call (uncached media read).
	// Direct loads through Bytes are cached reads and free, as on hardware.
	ReadDelay time.Duration
	// WriteDelay is added per explicit WriteAt call (a store reaching the
	// cache; near-free).
	WriteDelay time.Duration
	// FlushDelay is the issue cost per cache-line Flush (CLWB dispatch).
	FlushDelay time.Duration
	// FenceDelay is the drain cost per Fence (SFENCE waiting for all
	// outstanding write-backs to hit the persistence domain).
	FenceDelay time.Duration
}

// Built-in profiles. Optane DC write-backs drain in ~300-500ns and issue
// costs are tens of nanoseconds; battery-backed DRAM halves the drain.
// These reproduce the Optane-vs-DRAM ratios of Table 5. NoDelay removes
// all injected latency and is what unit tests use.
var (
	OptaneDC = Profile{Name: "OptaneDC", ReadDelay: 100 * time.Nanosecond, WriteDelay: 10 * time.Nanosecond, FlushDelay: 60 * time.Nanosecond, FenceDelay: 300 * time.Nanosecond}
	DRAM     = Profile{Name: "DRAM", ReadDelay: 60 * time.Nanosecond, WriteDelay: 5 * time.Nanosecond, FlushDelay: 30 * time.Nanosecond, FenceDelay: 100 * time.Nanosecond}
	NoDelay  = Profile{Name: "NoDelay"}
)

// spin busy-waits for roughly d. It is used instead of time.Sleep because
// the scheduler cannot honour sub-microsecond sleeps, and instead of a pure
// instruction loop because wall-clock spinning stays calibrated across
// machines.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Busy publicly exposes the calibrated spin so library models can charge
// documented instrumentation costs (e.g. an STM's per-load read-path
// overhead) in the same currency as media latencies.
func Busy(d time.Duration) { spin(d) }
