// Package pmem emulates a byte-addressable persistent memory device.
//
// The emulation reproduces the pieces of real PM hardware that matter for
// crash-consistent software: a volatile CPU-cache layer in front of the
// persistent media, explicit cache-line write-back (Flush, modelling
// CLWB/CLFLUSHOPT), store fences (Fence, modelling SFENCE), media latency
// profiles, and crash injection that discards everything not yet fenced to
// the media. The paper's testbed used Intel Optane DC DIMMs and
// battery-backed DRAM; the OptaneDC and DRAM profiles reproduce that
// latency asymmetry so benchmark *shapes* carry over.
package pmem

import (
	"runtime"
	"time"
)

// CacheLineSize is the granularity of Flush, matching x86 cache lines.
const CacheLineSize = 64

// Profile describes the latency behaviour of a persistent-memory medium.
// Latencies are injected with a calibrated spin so that sub-microsecond
// values remain meaningful (time.Sleep cannot sleep for 100ns).
//
// The cost model follows how the instructions actually behave: stores hit
// the cache and are nearly free; CLWB/CLFLUSHOPT issue cheaply and the
// write-backs pipeline; the fence is where the CPU stalls waiting for
// outstanding write-backs to reach the persistence domain. Charging the
// drain at Fence (rather than per line) keeps multi-line flush sequences
// as cheap relative to single-line ones as they are on real hardware.
type Profile struct {
	// Name identifies the profile in benchmark output ("OptaneDC", "DRAM").
	Name string
	// ReadDelay is added per explicit ReadAt call (uncached media read).
	// Direct loads through Bytes are cached reads and free, as on hardware.
	ReadDelay time.Duration
	// WriteDelay is added per explicit WriteAt call (a store reaching the
	// cache; near-free).
	WriteDelay time.Duration
	// FlushDelay is the issue cost per cache-line Flush (CLWB dispatch).
	FlushDelay time.Duration
	// FenceDelay is the drain cost per Fence (SFENCE waiting for all
	// outstanding write-backs to hit the persistence domain).
	FenceDelay time.Duration
	// Park, when set, injects latency with a yielding wait instead of the
	// calibrated busy-spin: the waiting goroutine repeatedly cedes the CPU
	// until the deadline passes. This models media whose persist drain is
	// asynchronous to the CPU — a CXL-attached far-memory device draining
	// its write queue while the core runs other work — so concurrently
	// fencing devices overlap their drains in wall-clock time even when
	// the host has fewer cores than devices. Spin-based profiles measure
	// CPU-coupled drains (Optane's on-DIMM controller stalls the store
	// pipeline); Park-based profiles measure drain-overlapped scaling.
	Park bool
}

// Built-in profiles. Optane DC write-backs drain in ~300-500ns and issue
// costs are tens of nanoseconds; battery-backed DRAM halves the drain.
// These reproduce the Optane-vs-DRAM ratios of Table 5. NoDelay removes
// all injected latency and is what unit tests use.
// CXL models a CXL-attached persistent-memory expander: reads and writes
// ride the coherence fabric at sub-microsecond cost, but a global persist
// flush (GPF-style drain of the device write queue) takes microseconds and
// runs asynchronously to the CPU — hence Park. It is the profile the shard
// scaling experiment uses: with drains overlappable, N independent pools
// fence in parallel and the scaling curve measures the protocol, not the
// host's core count.
var (
	OptaneDC = Profile{Name: "OptaneDC", ReadDelay: 100 * time.Nanosecond, WriteDelay: 10 * time.Nanosecond, FlushDelay: 60 * time.Nanosecond, FenceDelay: 300 * time.Nanosecond}
	DRAM     = Profile{Name: "DRAM", ReadDelay: 60 * time.Nanosecond, WriteDelay: 5 * time.Nanosecond, FlushDelay: 30 * time.Nanosecond, FenceDelay: 100 * time.Nanosecond}
	CXL      = Profile{Name: "CXL", ReadDelay: 300 * time.Nanosecond, WriteDelay: 100 * time.Nanosecond, FlushDelay: 200 * time.Nanosecond, FenceDelay: 8 * time.Microsecond, Park: true}
	NoDelay  = Profile{Name: "NoDelay"}
)

// spin busy-waits for roughly d. It is used instead of time.Sleep because
// the scheduler cannot honour sub-microsecond sleeps, and instead of a pure
// instruction loop because wall-clock spinning stays calibrated across
// machines.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// park waits for roughly d while repeatedly yielding the processor, so
// other runnable goroutines (another device's committer mid-drain, a
// connection goroutine parsing its next request) execute during the wait.
// Gosched-based waiting keeps sub-scheduler-tick latencies honest where
// time.Sleep would round every wait up to the timer granularity.
func park(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// delay injects d according to the profile's latency discipline.
func (p *Profile) delay(d time.Duration) {
	if p.Park {
		park(d)
		return
	}
	spin(d)
}

// Busy publicly exposes the calibrated spin so library models can charge
// documented instrumentation costs (e.g. an STM's per-load read-path
// overhead) in the same currency as media latencies.
func Busy(d time.Duration) { spin(d) }
