package pmem

import "unsafe"

// alignedBytes returns a size-byte slice whose first byte sits on a cache
// line boundary. The typed layer takes struct pointers directly into the
// arena (DAX-style), so the arena base must be at least as aligned as any
// persistent object; allocator blocks are cache-line aligned within it.
func alignedBytes(size int) []byte {
	raw := make([]byte, size+CacheLineSize)
	off := int(CacheLineSize-uintptr(unsafe.Pointer(&raw[0]))%CacheLineSize) % CacheLineSize
	return raw[off : off+size]
}
