package pmem

import (
	"encoding/binary"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Word-atomic access to the device buffer.
//
// The seqlock read path (pool.ReadView) loads heap words with no lock
// held while the group-commit batcher is mutating them under the shard's
// writer lock. The seqlock re-check makes any value read during a
// conflict window *discarded*, but the Go memory model (and the race
// detector) still requires both sides of such a race to use atomic
// operations. Every store that can touch lock-free-readable heap bytes
// therefore goes through StoreWord/StoreBytes below, and the read view
// loads through LoadWord: plain-data races become pairs of relaxed
// atomics, which is exactly the hardware contract real PM gives aligned
// 8-byte stores (the same assumption the torn-write fault model makes).
//
// The device buffer is cache-line aligned (alignedBytes), so any
// word-aligned device offset is an 8-byte-aligned address. Unaligned or
// ragged spans fall back to plain copies — those regions (log headers,
// backup scratch) are never read lock-free.

// hostBigEndian is true on big-endian hosts, where the native uint64 view
// of the buffer byte-swaps relative to the little-endian wire format the
// pool uses everywhere. memWord compensates so the buffer bytes are
// identical to what a plain little-endian copy would have produced.
var hostBigEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 0
}()

// memWord converts between a little-endian-decoded value and its native
// in-memory representation (an involution: applying it twice is the
// identity).
func memWord(v uint64) uint64 {
	if hostBigEndian {
		return bits.ReverseBytes64(v)
	}
	return v
}

func wordPtr(buf []byte, off uint64) *uint64 {
	return (*uint64)(unsafe.Pointer(&buf[off]))
}

// WordAligned reports whether [off, off+n) is a word-aligned,
// whole-word span — the precondition for tear-free atomic access.
func WordAligned(off, n uint64) bool {
	return off%WordSize == 0 && n%WordSize == 0
}

// LoadWord reads the little-endian uint64 at buf[off:] with an atomic
// load when the offset is word-aligned (plain decode otherwise). buf
// must be the device buffer (Bytes()) so alignment of off implies
// alignment of the address.
func LoadWord(buf []byte, off uint64) uint64 {
	if off%WordSize == 0 {
		return memWord(atomic.LoadUint64(wordPtr(buf, off)))
	}
	return binary.LittleEndian.Uint64(buf[off:])
}

// StoreWord writes val little-endian at buf[off:], atomically when the
// offset is word-aligned.
func StoreWord(buf []byte, off uint64, val uint64) {
	if off%WordSize == 0 {
		atomic.StoreUint64(wordPtr(buf, off), memWord(val))
		return
	}
	binary.LittleEndian.PutUint64(buf[off:], val)
}

// StoreBytes copies data into buf[off:], using atomic word stores for
// every aligned 8-byte lane so concurrent LoadWord readers never observe
// a torn word and the race detector sees atomics on both sides. A ragged
// head or tail (unaligned offset or length) is copied plainly — such
// spans are never read lock-free.
func StoreBytes(buf []byte, off uint64, data []byte) {
	n := uint64(len(data))
	if n == 0 {
		return
	}
	i := uint64(0)
	if head := off % WordSize; head != 0 {
		i = WordSize - head
		if i > n {
			i = n
		}
		copy(buf[off:], data[:i])
	}
	for ; i+WordSize <= n; i += WordSize {
		atomic.StoreUint64(wordPtr(buf, off+i), memWord(binary.LittleEndian.Uint64(data[i:])))
	}
	if i < n {
		copy(buf[off+i:], data[i:])
	}
}
