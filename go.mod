module corundum

go 1.23
