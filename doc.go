// Package corundum is a Go reproduction of Corundum (Hoseinzadeh &
// Swanson, ASPLOS 2021): a persistent-memory programming library whose
// design statically prevents the common classes of PM bugs — unlogged
// updates, inter-pool pointers, pointers into closed pools, and most
// allocation errors.
//
// The library itself lives in internal/core (typed pools, transactions,
// persistent smart pointers), built on internal/pmem (an emulated PM
// device with cache-line flush/fence semantics and crash injection),
// internal/alloc (a crash-atomic buddy allocator), internal/journal
// (undo/drop/alloc logs and recovery), and internal/pool (pool files and
// lifecycle). internal/check implements pmcheck, the build-time analyzer
// standing in for Rust's compile-time enforcement. internal/baselines
// models PMDK, Atlas, Mnemosyne, and go-pmem so the paper's evaluation
// (Figures 1-2, Tables 2, 3, 5) can be regenerated; see bench_test.go and
// cmd/corundum-bench.
package corundum
