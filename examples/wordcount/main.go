// wordcount: the paper's scalability workload (Figure 2) as a standalone
// program. Producer goroutines push text segments onto a persistent,
// mutex-protected stack; consumer goroutines pop segments and count words.
// Per-thread journals and per-journal allocator arenas are what let the
// transactions run in parallel.
//
// Usage:
//
//	go run ./examples/wordcount [-producers N] [-consumers N] [-segments N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"corundum/internal/workloads/wordcount"
)

func main() {
	producers := flag.Int("producers", 1, "producer goroutines")
	consumers := flag.Int("consumers", 4, "consumer goroutines")
	segments := flag.Int("segments", 128, "text segments in the corpus")
	segBytes := flag.Int("seg-bytes", 32<<10, "bytes per segment")
	flag.Parse()

	corpus := wordcount.GenerateCorpus(*segments, *segBytes, 7)
	s, err := wordcount.Open(wordcount.DefaultConfig(*producers + *consumers + 2))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	fmt.Printf("corpus: %d segments x %d bytes\n", *segments, *segBytes)

	// Sequential baseline.
	t0 := time.Now()
	words, err := wordcount.Run(s, 1, 1, corpus)
	if err != nil {
		log.Fatal(err)
	}
	seq := time.Since(t0)
	fmt.Printf("seq (1:1):   %8.3fs  %d words\n", seq.Seconds(), words)

	// Parallel run.
	t0 = time.Now()
	words, err = wordcount.Run(s, *producers, *consumers, corpus)
	if err != nil {
		log.Fatal(err)
	}
	par := time.Since(t0)
	fmt.Printf("par (%d:%d):  %8.3fs  %d words  speedup %.2fx\n",
		*producers, *consumers, par.Seconds(), words, seq.Seconds()/par.Seconds())
}
