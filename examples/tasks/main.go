// tasks: a persistent to-do tracker showing the container library
// (SortedMap + Stack) composed on one pool. Tasks survive restarts; every
// command runs in one failure-atomic transaction, and completed tasks move
// to an undo stack so "undo" can resurrect them — all reclaimed exactly
// once thanks to drop logs.
//
//	go run ./examples/tasks add "write the report"
//	go run ./examples/tasks list
//	go run ./examples/tasks done <id>
//	go run ./examples/tasks undo
//	go run ./examples/tasks demo
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"corundum/internal/containers"
	"corundum/internal/core"
)

// P is the tracker's pool type.
type P struct{}

// Task is one persistent to-do item.
type Task struct {
	ID    uint64
	Title core.PString[P]
}

// DropContents frees the owned title when a task is reclaimed.
func (t *Task) DropContents(j *core.Journal[P]) error {
	return t.Title.Free(j)
}

// Root composes two containers and an ID counter on one pool.
type Root struct {
	Open   containers.SortedMap[Task, P]
	Done   containers.Stack[Task, P]
	NextID core.PCell[uint64, P]
}

func main() {
	root, err := core.Open[Root, P]("tasks.pool", core.Config{Size: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer core.ClosePool[P]()
	r := root.Deref()

	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"demo"}
	}
	switch args[0] {
	case "add":
		if len(args) < 2 {
			log.Fatal("usage: tasks add <title>")
		}
		id, err := add(r, strings.Join(args[1:], " "))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("added #%d\n", id)
	case "list":
		list(r)
	case "done":
		if len(args) != 2 {
			log.Fatal("usage: tasks done <id>")
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			log.Fatal(err)
		}
		ok, err := done(r, id)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("no such task")
			os.Exit(1)
		}
		fmt.Printf("completed #%d\n", id)
	case "undo":
		id, ok, err := undo(r)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("nothing to undo")
			os.Exit(1)
		}
		fmt.Printf("restored #%d\n", id)
	case "demo":
		for _, title := range []string{"read the paper", "port it to Go", "reproduce figure 1"} {
			if _, err := add(r, title); err != nil {
				log.Fatal(err)
			}
		}
		list(r)
		fmt.Println("completing the first task...")
		minID, _, _ := r.Open.Min()
		if _, err := done(r, minID); err != nil {
			log.Fatal(err)
		}
		list(r)
		fmt.Println("changed our mind: undo")
		if _, _, err := undo(r); err != nil {
			log.Fatal(err)
		}
		list(r)
		fmt.Println("state persists in tasks.pool — run again to keep going")
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func add(r *Root, title string) (uint64, error) {
	return core.TransactionV[uint64, P](func(j *core.Journal[P]) (uint64, error) {
		id := r.NextID.Get() + 1
		if err := r.NextID.Set(j, id); err != nil {
			return 0, err
		}
		pt, err := core.NewPString[P](j, title)
		if err != nil {
			return 0, err
		}
		return id, r.Open.Put(j, id, Task{ID: id, Title: pt})
	})
}

func list(r *Root) {
	fmt.Printf("open tasks (%d):\n", r.Open.Len())
	r.Open.Scan(func(id uint64, t *Task) bool {
		fmt.Printf("  #%-4d %s\n", id, t.Title.String())
		return true
	})
	if r.Done.Len() > 0 {
		fmt.Printf("completed (%d, most recent first):\n", r.Done.Len())
		r.Done.Range(func(t *Task) bool {
			fmt.Printf("  #%-4d %s\n", t.ID, t.Title.String())
			return true
		})
	}
}

// done moves a task from the sorted map to the undo stack in one
// transaction: ownership of the Task (and its persistent title) transfers
// atomically; a crash can never duplicate or lose it.
func done(r *Root, id uint64) (bool, error) {
	return core.TransactionV[bool, P](func(j *core.Journal[P]) (bool, error) {
		task, ok, err := r.Open.Take(j, id) // ownership transfers out
		if err != nil || !ok {
			return false, err
		}
		return true, r.Done.Push(j, task)
	})
}

// undo moves the most recently completed task back into the open map.
type undoResult struct {
	ID    uint64
	Moved bool
}

func undo(r *Root) (uint64, bool, error) {
	res, err := core.TransactionV[undoResult, P](func(j *core.Journal[P]) (undoResult, error) {
		task, ok, err := r.Done.Pop(j)
		if err != nil || !ok {
			return undoResult{}, err
		}
		return undoResult{ID: task.ID, Moved: true}, r.Open.Put(j, task.ID, task)
	})
	return res.ID, res.Moved, err
}
