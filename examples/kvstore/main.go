// kvstore: a persistent string key-value store with a volatile index,
// demonstrating the paper's VWeak pointers — the only sanctioned way to
// point from DRAM into a pool. The volatile index (a Go map) holds VWeak
// handles to persistent entries; after the pool closes, the index's
// handles stop resolving instead of dangling.
//
// Usage:
//
//	go run ./examples/kvstore put <key> <value>
//	go run ./examples/kvstore get <key>
//	go run ./examples/kvstore del <key>
//	go run ./examples/kvstore list
//	go run ./examples/kvstore demo     # scripted walk-through
package main

import (
	"fmt"
	"log"
	"os"

	"corundum/internal/core"
)

// P is the store's pool type.
type P struct{}

// Entry is one persistent key-value pair, chained per bucket.
type Entry struct {
	Key  core.PString[P]
	Val  core.PString[P]
	Next core.PBox[Entry, P]
}

// DropContents frees the owned strings when an entry dies. The chain link
// is relinked by the remover, so it is not dropped here.
func (e *Entry) DropContents(j *core.Journal[P]) error {
	if err := e.Key.Free(j); err != nil {
		return err
	}
	return e.Val.Free(j)
}

const buckets = 64

// Root is the pool root: a fixed bucket directory of entry chains.
type Root struct {
	Buckets [buckets]core.PRefCell[core.PBox[Entry, P], P]
	Count   core.PCell[int64, P]
}

// Store wraps the persistent root with a volatile VWeak-style cache of
// bucket positions (a simple demonstration; a production index would hold
// demoted pointers to hot entries).
type Store struct {
	root core.Root[Root, P]
}

func hash(s string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return int(h % buckets)
}

// Put inserts or updates key.
func (s *Store) Put(key, val string) error {
	return core.Transaction[P](func(j *core.Journal[P]) error {
		r := s.root.Deref()
		cell := &r.Buckets[hash(key)]
		w, err := cell.BorrowMut(j)
		if err != nil {
			return err
		}
		defer w.Drop()
		for cur := *w.Value(); !cur.IsNull(); {
			e := cur.DerefJ(j)
			if e.Key.Equal(key) {
				// Replace the value string in place.
				if err := e.Val.Free(j); err != nil {
					return err
				}
				nv, err := core.NewPString[P](j, val)
				if err != nil {
					return err
				}
				p, err := cur.DerefMut(j)
				if err != nil {
					return err
				}
				p.Val = nv
				return nil
			}
			cur = e.Next
		}
		pk, err := core.NewPString[P](j, key)
		if err != nil {
			return err
		}
		pv, err := core.NewPString[P](j, val)
		if err != nil {
			return err
		}
		box, err := core.NewPBox[Entry, P](j, Entry{Key: pk, Val: pv, Next: *w.Value()})
		if err != nil {
			return err
		}
		*w.Value() = box
		return r.Count.Update(j, func(n int64) int64 { return n + 1 })
	})
}

// Get looks up key without a transaction (reads are always safe).
func (s *Store) Get(key string) (string, bool) {
	r := s.root.Deref()
	for cur := r.Buckets[hash(key)].Read(); !cur.IsNull(); {
		e := cur.Deref()
		if e.Key.Equal(key) {
			return e.Val.String(), true
		}
		cur = e.Next
	}
	return "", false
}

// Del removes key, reclaiming its entry and strings at commit. The
// outcome leaves the transaction through TransactionV's return value,
// keeping the body free of captured-variable writes (TxInSafe).
func (s *Store) Del(key string) (bool, error) {
	return core.TransactionV[bool, P](func(j *core.Journal[P]) (bool, error) {
		r := s.root.Deref()
		cell := &r.Buckets[hash(key)]
		w, err := cell.BorrowMut(j)
		if err != nil {
			return false, err
		}
		defer w.Drop()
		slot := w.Value()
		for !slot.IsNull() {
			e := slot.DerefJ(j)
			if e.Key.Equal(key) {
				victim := *slot
				// Relink past the victim, then free it (strings included).
				p, err := victim.DerefMut(j)
				if err != nil {
					return false, err
				}
				next := p.Next
				p.Next = core.PBox[Entry, P]{} // detach before drop
				*slot = next
				if err := victim.Free(j); err != nil {
					return false, err
				}
				return true, r.Count.Update(j, func(n int64) int64 { return n - 1 })
			}
			// Walk into the entry's next field (which lives in PM).
			ep, err := slot.DerefMut(j)
			if err != nil {
				return false, err
			}
			slot = &ep.Next
		}
		return false, nil
	})
}

// List prints every pair.
func (s *Store) List() {
	r := s.root.Deref()
	total := 0
	for b := 0; b < buckets; b++ {
		for cur := r.Buckets[b].Read(); !cur.IsNull(); {
			e := cur.Deref()
			fmt.Printf("  %s = %s\n", e.Key.String(), e.Val.String())
			cur = e.Next
			total++
		}
	}
	fmt.Printf("(%d entries)\n", total)
}

func main() {
	root, err := core.Open[Root, P]("kvstore.pool", core.Config{Size: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer core.ClosePool[P]()
	store := &Store{root: root}

	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"demo"}
	}
	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: kvstore put <key> <value>")
		}
		if err := store.Put(args[1], args[2]); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ok")
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: kvstore get <key>")
		}
		if v, ok := store.Get(args[1]); ok {
			fmt.Println(v)
		} else {
			fmt.Println("(not found)")
			os.Exit(1)
		}
	case "del":
		if len(args) != 2 {
			log.Fatal("usage: kvstore del <key>")
		}
		ok, err := store.Del(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ok)
	case "list":
		store.List()
	case "demo":
		fmt.Println("populating persistent store...")
		for _, kv := range [][2]string{
			{"paper", "Corundum: Statically-Enforced Persistent Memory Safety"},
			{"venue", "ASPLOS 2021"},
			{"lang", "Go (reproduction)"},
		} {
			if err := store.Put(kv[0], kv[1]); err != nil {
				log.Fatal(err)
			}
		}
		store.List()
		fmt.Println("updating one key transactionally...")
		if err := store.Put("lang", "Go 1.23"); err != nil {
			log.Fatal(err)
		}
		v, _ := store.Get("lang")
		fmt.Println("lang =", v)
		fmt.Println("deleting 'venue'...")
		if _, err := store.Del("venue"); err != nil {
			log.Fatal(err)
		}
		store.List()
		fmt.Println("re-run to see the data persisted in kvstore.pool")
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}
