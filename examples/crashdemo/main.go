// crashdemo: watch Corundum's failure atomicity do its job.
//
// The program builds a small persistent banking ledger, then performs a
// transfer while injecting a power failure at a random device operation
// mid-transaction. After "reboot" (recovery), it verifies that the money
// is either entirely moved or entirely not — never lost — and that the
// allocator heap survived structurally intact. Run it repeatedly; every
// crash point ends in a consistent ledger.
//
//	go run ./examples/crashdemo [-crash-at N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"corundum/internal/core"
	"corundum/internal/pmem"
	"corundum/internal/pool"
)

// P is the ledger's pool type.
type P struct{}

// Account is one persistent account.
type Account struct {
	ID      int64
	Balance core.PCell[int64, P]
}

// Ledger is the pool root: a fixed set of accounts and an audit counter.
type Ledger struct {
	Accounts  [8]Account
	Transfers core.PCell[int64, P]
}

func total(l *Ledger) int64 {
	var sum int64
	for i := range l.Accounts {
		sum += l.Accounts[i].Balance.Get()
	}
	return sum
}

func main() {
	crashAt := flag.Int("crash-at", 0, "device operation to crash at (0 = random)")
	flag.Parse()
	if *crashAt == 0 {
		rand.New(rand.NewSource(time.Now().UnixNano()))
		*crashAt = 1 + rand.Intn(60)
	}

	cfg := core.Config{Size: 8 << 20, Journals: 4, Mem: pmem.Options{TrackCrash: true}}
	root, err := core.Open[Ledger, P]("", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Seed the ledger: 1000 in every account.
	if err := core.Transaction[P](func(j *core.Journal[P]) error {
		l := root.Deref()
		for i := range l.Accounts {
			if err := l.Accounts[i].Balance.Set(j, 1000); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	dev := core.DeviceOf[P]()
	before := total(root.Deref())
	fmt.Printf("ledger seeded: %d accounts, total %d\n", 8, before)

	// Inject a crash mid-transfer.
	var count int
	dev.SetFaultInjector(func(op pmem.Op) bool {
		count++
		return count == *crashAt
	})
	fmt.Printf("transferring 500 from account 0 to account 7, crashing at device op %d...\n", *crashAt)
	func() {
		defer func() {
			if r := recover(); r != nil && r != pmem.ErrInjectedCrash {
				panic(r)
			}
		}()
		_ = core.Transaction[P](func(j *core.Journal[P]) error {
			l := root.Deref()
			if err := l.Accounts[0].Balance.Update(j, func(b int64) int64 { return b - 500 }); err != nil {
				return err
			}
			if err := l.Accounts[7].Balance.Update(j, func(b int64) int64 { return b + 500 }); err != nil {
				return err
			}
			return l.Transfers.Update(j, func(n int64) int64 { return n + 1 })
		})
	}()
	dev.SetFaultInjector(nil)

	// Power loss: everything unflushed is gone. Reboot: pool recovery runs.
	dev.Crash()
	if err := core.ClosePool[P](); err != nil {
		log.Fatal(err)
	}
	p2, err := pool.Attach(dev)
	if err != nil {
		log.Fatal("recovery failed:", err)
	}
	fmt.Println("crashed and recovered.")

	// Verify: read the ledger straight from the recovered pool image.
	l2, err := core.Adopt[Ledger, P](p2)
	if err != nil {
		log.Fatal(err)
	}
	defer core.ClosePool[P]()
	l := l2.Deref()
	after := total(l)
	a0 := l.Accounts[0].Balance.Get()
	a7 := l.Accounts[7].Balance.Get()
	transfers := l.Transfers.Get()
	fmt.Printf("after recovery: account0=%d account7=%d transfers=%d total=%d\n", a0, a7, transfers, after)

	switch {
	case after != before:
		log.Fatalf("MONEY LOST OR CREATED: total %d != %d", after, before)
	case transfers == 1 && (a0 != 500 || a7 != 1500):
		log.Fatalf("TORN TRANSFER: recorded but balances are %d/%d", a0, a7)
	case transfers == 0 && (a0 != 1000 || a7 != 1000):
		log.Fatalf("TORN TRANSFER: not recorded but balances are %d/%d", a0, a7)
	}
	if err := p2.CheckConsistency(); err != nil {
		log.Fatal("heap corrupt after recovery:", err)
	}
	fmt.Println("ledger is atomically consistent: the transfer either fully happened or never did.")
}
