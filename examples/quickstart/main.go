// Quickstart: the paper's Listing 1 — a persistent linked list whose
// contents survive process restarts.
//
// Run it several times:
//
//	go run ./examples/quickstart
//
// Each run appends one node inside a transaction and prints the whole
// list, which grows across runs because it lives in list.pool.
package main

import (
	"fmt"
	"log"
	"os"

	"corundum/internal/core"
)

// P is this program's pool type, as in `pool!()` from the paper: the type
// parameter that binds every persistent pointer to this pool.
type P struct{}

// Node mirrors Listing 1: a value and a PRefCell-wrapped optional next
// pointer (the zero PBox is None).
type Node struct {
	Val  int64
	Next core.PRefCell[core.PBox[Node, P], P]
}

// appendNode is Listing 1's append(): recursively find the end of the
// list and link a new node. The journal argument proves we are inside a
// transaction; borrowing mutably undo-logs the cell.
func appendNode(j *core.Journal[P], n *Node, v int64) error {
	t, err := n.Next.BorrowMut(j)
	if err != nil {
		return err
	}
	defer t.Drop()
	if !t.Value().IsNull() {
		return appendNode(j, t.Value().DerefJ(j), v)
	}
	box, err := core.NewPBox[Node, P](j, Node{Val: v})
	if err != nil {
		return err
	}
	*t.Value() = box
	return nil
}

func main() {
	path := "list.pool"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}

	// Open binds pool type P to the file, creating it on first use; the
	// root object is a zero-valued Node acting as the list's sentinel head.
	head, err := core.Open[Node, P](path, core.Config{Size: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer core.ClosePool[P]()

	// Count existing nodes so each run appends the next integer.
	count := int64(0)
	for n := head.Deref(); ; {
		next := n.Next.Read()
		if next.IsNull() {
			break
		}
		n = next.Deref()
		count++
	}

	if err := core.Transaction[P](func(j *core.Journal[P]) error {
		return appendNode(j, head.Deref(), count+1)
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("list after %d run(s):", count+1)
	for n := head.Deref(); ; {
		next := n.Next.Read()
		if next.IsNull() {
			break
		}
		n = next.Deref()
		fmt.Printf(" %d", n.Val)
	}
	fmt.Println()
}
