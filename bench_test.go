package corundum_test

// Benchmarks regenerating the paper's evaluation via `go test -bench`.
// Each BenchmarkTable5* group corresponds to rows of Table 5, the
// BenchmarkFig1* groups to the bars of Figure 1, BenchmarkFig2 to the
// scalability curve, and BenchmarkTable2/3 to the qualitative tables.
// cmd/corundum-bench produces the full formatted tables and the
// artifact's CSV files from the same generators.

import (
	"fmt"
	"testing"

	"corundum/internal/baselines/engine"
	"corundum/internal/bench"
	"corundum/internal/core"
	"corundum/internal/pmem"
	"corundum/internal/workloads"
	"corundum/internal/workloads/loc"
	"corundum/internal/workloads/wordcount"
)

// --- Table 5: basic operation latencies -----------------------------------

type benchTag struct{}

type benchRoot struct {
	Cell core.PCell[int64, benchTag]
}

func openBenchPool(b *testing.B, prof pmem.Profile) {
	b.Helper()
	_, err := core.Open[benchRoot, benchTag]("", core.Config{
		Size: 256 << 20, Journals: 8, JournalCap: 8 << 20,
		Mem: pmem.Options{Profile: prof},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = core.ClosePool[benchTag]() })
}

func profiles() []pmem.Profile {
	return []pmem.Profile{pmem.OptaneDC, pmem.DRAM}
}

func BenchmarkTable5Deref(b *testing.B) {
	for _, prof := range profiles() {
		b.Run(prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			var box core.PBox[int64, benchTag]
			if err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
				var err error
				box, err = core.NewPBox[int64, benchTag](j, 1)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			var sink int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += *box.Deref()
			}
			_ = sink
		})
	}
}

func BenchmarkTable5DerefMutFirst(b *testing.B) {
	for _, prof := range profiles() {
		b.Run(prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			var box core.PBox[int64, benchTag]
			if err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
				var err error
				box, err = core.NewPBox[int64, benchTag](j, 1)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One transaction per iteration: every DerefMut is a first.
				if err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
					p, err := box.DerefMut(j)
					if err != nil {
						return err
					}
					*p = int64(i)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable5DerefMutLater(b *testing.B) {
	for _, prof := range profiles() {
		b.Run(prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			var box core.PBox[int64, benchTag]
			if err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
				var err error
				box, err = core.NewPBox[int64, benchTag](j, 1)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			if err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
				if _, err := box.DerefMut(j); err != nil { // pay the first
					return err
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p, err := box.DerefMut(j)
					if err != nil {
						return err
					}
					*p = int64(i)
				}
				b.StopTimer()
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable5Alloc(b *testing.B) {
	for _, size := range []uint64{8, 256, 4096} {
		for _, prof := range profiles() {
			b.Run(fmt.Sprintf("%dB/%s", size, prof.Name), func(b *testing.B) {
				openBenchPool(b, prof)
				b.ResetTimer()
				// Chunked transactions: drops apply at each commit, so b.N
				// iterations never exhaust the pool.
				for done := 0; done < b.N; done += 1024 {
					chunk := min(1024, b.N-done)
					err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
						b.StartTimer()
						offs := make([]uint64, chunk)
						for k := 0; k < chunk; k++ {
							off, err := j.Inner().Alloc(size)
							if err != nil {
								return err
							}
							offs[k] = off
						}
						b.StopTimer()
						for _, off := range offs {
							if err := j.Inner().DropLog(off, size); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTable5TxNop(b *testing.B) {
	for _, prof := range profiles() {
		b.Run(prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.Transaction[benchTag](func(*core.Journal[benchTag]) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable5DataLog(b *testing.B) {
	for _, size := range []uint64{8, 1024, 4096} {
		for _, prof := range profiles() {
			b.Run(fmt.Sprintf("%dB/%s", size, prof.Name), func(b *testing.B) {
				openBenchPool(b, prof)
				b.ResetTimer()
				for done := 0; done < b.N; done += 256 {
					chunk := min(256, b.N-done)
					err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
						for k := 0; k < chunk; k++ {
							b.StopTimer()
							off, err := j.Inner().Alloc(size)
							if err != nil {
								return err
							}
							b.StartTimer()
							if err := j.Inner().DataLog(off, size); err != nil {
								return err
							}
							b.StopTimer()
							if err := j.Inner().DropLog(off, size); err != nil {
								return err
							}
							b.StartTimer()
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTable5AtomicInit(b *testing.B) {
	for _, prof := range profiles() {
		b.Run("Pbox/"+prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			b.ResetTimer()
			for done := 0; done < b.N; done += 512 {
				chunk := min(512, b.N-done)
				err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
					for k := 0; k < chunk; k++ {
						box, err := core.NewPBox[int64, benchTag](j, int64(k))
						if err != nil {
							return err
						}
						b.StopTimer()
						if err := box.Free(j); err != nil {
							return err
						}
						b.StartTimer()
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Parc/"+prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			b.ResetTimer()
			for done := 0; done < b.N; done += 512 {
				chunk := min(512, b.N-done)
				err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
					for k := 0; k < chunk; k++ {
						r, err := core.NewParc[int64, benchTag](j, int64(k))
						if err != nil {
							return err
						}
						b.StopTimer()
						if err := r.Drop(j); err != nil {
							return err
						}
						b.StartTimer()
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable5PClone(b *testing.B) {
	for _, prof := range profiles() {
		b.Run("Prc/"+prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			b.ResetTimer()
			err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
				r, err := core.NewPrc[int64, benchTag](j, 1)
				if err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					if _, err := r.PClone(j); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
		b.Run("Parc/"+prof.Name, func(b *testing.B) {
			openBenchPool(b, prof)
			b.ResetTimer()
			err := core.Transaction[benchTag](func(j *core.Journal[benchTag]) error {
				r, err := core.NewParc[int64, benchTag](j, 1)
				if err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					if _, err := r.PClone(j); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Figure 1: library comparison ------------------------------------------

func fig1Cfg() engine.Config {
	return engine.Config{Size: 128 << 20}
}

func BenchmarkFig1BSTInsert(b *testing.B) {
	for _, lib := range bench.Libraries() {
		b.Run(lib.Name(), func(b *testing.B) {
			p, err := lib.Open(fig1Cfg())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			bst, err := workloads.NewBST(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bst.Insert(uint64(i)*2654435761%1000003, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1BSTCheck(b *testing.B) {
	for _, lib := range bench.Libraries() {
		b.Run(lib.Name(), func(b *testing.B) {
			p, err := lib.Open(fig1Cfg())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			bst, err := workloads.NewBST(p)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 10000; i++ {
				if err := bst.Insert(uint64(i)*2654435761%1000003, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bst.Lookup(uint64(i) * 2654435761 % 1000003); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1KVStorePut(b *testing.B) {
	for _, lib := range bench.Libraries() {
		b.Run(lib.Name(), func(b *testing.B) {
			p, err := lib.Open(fig1Cfg())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			kv, err := workloads.NewKVStore(p, 1<<14)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := kv.Put(uint64(i), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1KVStoreGet(b *testing.B) {
	for _, lib := range bench.Libraries() {
		b.Run(lib.Name(), func(b *testing.B) {
			p, err := lib.Open(fig1Cfg())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			kv, err := workloads.NewKVStore(p, 1<<14)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 10000; i++ {
				if err := kv.Put(uint64(i), uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := kv.Get(uint64(i % 10000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1BTreeInsert(b *testing.B) {
	for _, lib := range bench.Libraries() {
		b.Run(lib.Name(), func(b *testing.B) {
			p, err := lib.Open(fig1Cfg())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			bt, err := workloads.NewBTree(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bt.Insert(uint64(i)*2654435761%1000003+1, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1BTreeRand(b *testing.B) {
	for _, lib := range bench.Libraries() {
		b.Run(lib.Name(), func(b *testing.B) {
			p, err := lib.Open(fig1Cfg())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			bt, err := workloads.NewBTree(p)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 5000; i++ {
				if err := bt.Insert(uint64(i)*2654435761%100003+1, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i)*2654435761%100003 + 1
				switch i % 4 {
				case 0:
					if err := bt.Insert(k, k); err != nil {
						b.Fatal(err)
					}
				case 1:
					if _, err := bt.Remove(k); err != nil {
						b.Fatal(err)
					}
				default:
					if _, _, err := bt.Lookup(k); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Figure 2: wordcount scalability ----------------------------------------

func BenchmarkFig2Wordcount(b *testing.B) {
	corpus := wordcount.GenerateCorpus(64, 16<<10, 1)
	for _, consumers := range []int{1, 2, 4, 8, 15} {
		b.Run(fmt.Sprintf("1to%d", consumers), func(b *testing.B) {
			s, err := wordcount.Open(wordcount.DefaultConfig(consumers + 4))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wordcount.Run(s, 1, consumers, corpus); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Tables 2 and 3 -----------------------------------------------------------

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.VerifyTable2("internal/check/testdata"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := loc.Table3()
		if len(rows) != 3 {
			b.Fatal("bad table 3")
		}
	}
}
