// Command corundum-torture runs randomized crash-injection campaigns
// against the library: random transactions over a persistent SortedMap and
// Stack, power cut at random device operations (sometimes with adversarial
// cache eviction), recovery, and verification that every acknowledged
// transaction survived and every interrupted one is all-or-nothing.
//
//	corundum-torture [-seeds N] [-iterations N]
//
// Exit code 1 means a consistency violation was found (a bug).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"corundum/internal/torture"
)

func main() {
	seeds := flag.Int("seeds", 8, "number of independent campaigns")
	iterations := flag.Int("iterations", 500, "transactions per campaign")
	flag.Parse()

	start := time.Now()
	totalCrashes := 0
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		res, err := torture.Campaign(seed, *iterations)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corundum-torture: seed %d: CONSISTENCY VIOLATION: %v\n", seed, err)
			os.Exit(1)
		}
		totalCrashes += res.Crashes
		fmt.Printf("seed %-3d %5d txs, %4d crashes (%4d rolled back, %3d rolled forward, %3d evicting), map=%d\n",
			seed, res.Iterations, res.Crashes, res.RolledBack, res.RolledFwd, res.Evictions, res.FinalMapLen)
	}
	fmt.Printf("OK: %d campaigns, %d injected crashes, all recoveries consistent (%.1fs)\n",
		*seeds, totalCrashes, time.Since(start).Seconds())
}
