// Command corundum-torture runs crash-injection campaigns against the
// library in one of two modes.
//
// Random mode (the default) is the paper's testing methodology: random
// transactions over persistent structures, power cut at random device
// operations (sometimes with adversarial cache eviction), recovery, and
// verification that every acknowledged transaction survived and every
// interrupted one is all-or-nothing.
//
//	corundum-torture [-seeds N] [-iterations N] [-workers N]
//
// With -workers 1 (the default) each campaign is serial: one transaction
// in flight at a time. With -workers N>1, N goroutines transact
// concurrently on the same pool and the power cut lands while several
// journals are active — the configuration that stresses sharded-journal
// recovery.
//
// Exhaust mode enumerates EVERY device operation of a fixed workload as a
// crash point — no sampling — recovers from each, and verifies
// linearizability of acknowledged steps plus heap/fsck invariants. It
// additionally injects crashes DURING recovery, nested to -depth, and
// optionally replays each crash point with adversarial cache eviction:
//
//	corundum-torture -mode exhaust [-workload kvstore|bst|btree] [-depth K]
//	                 [-steps N] [-evict-seeds N] [-workers N] [-dump-dir D]
//
// Faults mode drops below fail-stop: at every crash point (subsampled by
// -stride) it explores word-granularity torn writes — every combination
// of at-risk 8-byte words when the space fits -torn-budget, a bracketed
// seeded sweep otherwise — and injects at-rest bit flips into long-lived
// media, asserting the no-silent-corruption invariant: every fault is
// masked, repaired, or loudly detected (refusal, degraded mode, or a
// data-corruption error), never silently wrong:
//
//	corundum-torture -mode faults [-workload kvstore] [-steps N]
//	                 [-stride N] [-torn-budget N] [-flips N]
//	                 [-workers N] [-dump-dir D]
//
// Migrate mode exhaustively power-cuts a scripted 1->2 shard split: every
// device op of the migration protocol (manifest publication, per-batch
// copies, the source hand-off transaction, the config commit) across both
// pools is a crash point, each recovered-and-resumed — with nested cuts
// during the recovery itself to -depth — and every terminal state must
// hold each key exactly once at its new home:
//
//	corundum-torture -mode migrate [-depth K] [-mig-keys N] [-mig-batch W]
//	                 [-max-points N] [-workers N] [-dump-dir D]
//
// Repl mode runs the replication chaos rotation on live primary/replica
// pairs under a real client write stream: link cuts, a replica power cut
// mid-apply, a promotion under load, a power cut mid-bootstrap, and a
// primary power cut — each round must end in byte-exact convergence with
// every acknowledged write of the surviving epoch present, and the
// deposed epoch's acknowledged writes surviving as a clean prefix of ack
// order:
//
//	corundum-torture -mode repl [-repl-rounds N] [-repl-writes N]
//	                 [-repl-seed S]
//
// Readers mode runs the reader-vs-crash campaign: reader connections
// hammer GET/SCAN through the seqlock lock-free read path while a churn
// stream overwrites, deletes, and allocates underneath them and injected
// power cuts land mid-commit. No reader may ever observe a torn value, a
// phantom key, or a value outside its key's submitted history; every
// acknowledged write must survive the cut exactly; and the rebooted
// server must serve lock-free reads again:
//
//	corundum-torture -mode readers [-reader-rounds N] [-reader-writes N]
//	                 [-reader-clients N] [-reader-seed S] [-locked-reads]
//
// In exhaust and faults modes, -shards N emulates an N-shard deployment:
// the campaign crashes shard 0 over and over while shards 1..N-1 serve
// live KV traffic on their own independent pools. When the campaign
// finishes, every sibling's acknowledged write is re-verified and its
// store walked — a crash, torn write, or bit flip on shard i must never
// block or corrupt shard j.
//
// Exit code 1 means a consistency violation was found (a bug); in exhaust
// and faults modes each violation's flight-recorder dump is written under
// -dump-dir.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"corundum/internal/explore"
	"corundum/internal/torture"
)

func main() {
	mode := flag.String("mode", "random", "campaign mode: random | exhaust | faults | migrate | repl | readers")
	seeds := flag.Int("seeds", 8, "random mode: number of independent campaigns")
	iterations := flag.Int("iterations", 500, "random mode: transactions per campaign")
	workers := flag.Int("workers", 0, fmt.Sprintf("goroutines (random mode: 1..%d concurrent transactions, default 1; exhaust mode: crash-point shards, default GOMAXPROCS)", torture.MaxWorkers))
	workload := flag.String("workload", "kvstore", "exhaust mode: structure under test (kvstore | allocheavy | bst | btree)")
	depth := flag.Int("depth", 2, "exhaust mode: nested crashes injected during recovery (0 = none)")
	steps := flag.Int("steps", 8, "exhaust mode: script mutations to enumerate crash points over")
	evictSeeds := flag.Int("evict-seeds", 0, "exhaust mode: additionally replay each crash point with eviction seeds 1..N")
	dumpDir := flag.String("dump-dir", "", "exhaust/faults mode: write flight-recorder dumps for violations into this directory")
	stride := flag.Int("stride", 1, "faults mode: explore every stride-th crash point")
	tornBudget := flag.Int("torn-budget", 16, "faults mode: max torn-word schedules per crash point")
	slabRefill := flag.Int("slab-refill", 0, "exhaust mode: slab refill batch size (0 = pool default, -1 = disable the cache)")
	slabCap := flag.Int("slab-cap", 0, "exhaust mode: parked blocks per class before a spill (0 = pool default)")
	flips := flag.Int("flips", 4, "faults mode: bit flips probed per crash point")
	migKeys := flag.Int("mig-keys", 12, "migrate mode: keys seeded on the source shard")
	migBatch := flag.Int("mig-batch", 4, "migrate mode: buckets moved per crash-atomic batch")
	maxPoints := flag.Int("max-points", 0, "migrate mode: explore only the first N top-level crash points (0 = all) — the CI budget knob")
	replRounds := flag.Int("repl-rounds", 10, "repl mode: chaos rounds (the five scenarios rotate; 10 = two full rotations)")
	replWrites := flag.Int("repl-writes", 200, "repl mode: client writes per round")
	replSeed := flag.Int64("repl-seed", 1, "repl mode: campaign randomness seed")
	readerRounds := flag.Int("reader-rounds", 6, "readers mode: rounds (the three scenarios rotate; 6 = two full rotations)")
	readerWrites := flag.Int("reader-writes", 400, "readers mode: churn writes per round")
	readerClients := flag.Int("reader-clients", 8, "readers mode: concurrent reader connections")
	readerSeed := flag.Int64("reader-seed", 1, "readers mode: campaign randomness seed")
	lockedReads := flag.Bool("locked-reads", false, "readers mode: run the campaign through the RLock fallback path (A/B control)")
	shards := flag.Int("shards", 1, "exhaust/faults mode: run the campaign on shard 0 of an N-shard deployment; shards 1..N-1 serve live traffic throughout and are verified at the end")
	flag.Parse()

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "corundum-torture: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	switch *mode {
	case "random":
		runRandom(*seeds, *iterations, *workers)
	case "exhaust":
		sib := startSiblings(*shards - 1)
		runExhaust(*workload, *depth, *steps, *evictSeeds, *workers, *slabRefill, *slabCap, *dumpDir)
		stopSiblings(sib)
	case "faults":
		sib := startSiblings(*shards - 1)
		runFaults(*workload, *steps, *stride, *tornBudget, *flips, *workers, *dumpDir)
		stopSiblings(sib)
	case "migrate":
		runMigrate(*migKeys, *migBatch, *depth, *maxPoints, *workers, *dumpDir)
	case "repl":
		runRepl(*replRounds, *replWrites, *replSeed)
	case "readers":
		runReaders(*readerRounds, *readerWrites, *readerClients, *readerSeed, *lockedReads)
	default:
		fmt.Fprintf(os.Stderr, "corundum-torture: unknown -mode %q (want random, exhaust, faults, migrate, repl, or readers)\n", *mode)
		os.Exit(2)
	}
}

// startSiblings brings up the other shards of an emulated N-shard
// deployment. They serve deterministic KV traffic on their own pools for
// the whole campaign: the campaign's crashes, torn writes, and bit flips
// all land on shard 0's device, and the siblings prove the blast radius
// stops there.
func startSiblings(n int) *explore.Siblings {
	if n <= 0 {
		return nil
	}
	sib, err := explore.StartSiblings(n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: starting %d sibling shards: %v\n", n, err)
		os.Exit(2)
	}
	fmt.Printf("sibling shards: %d serving live traffic alongside the campaign\n", n)
	return sib
}

// stopSiblings verifies the sibling shards after the campaign. Note the
// campaign exits the process directly on violations; siblings are only
// checked when shard 0's campaign itself came out clean.
func stopSiblings(sib *explore.Siblings) {
	if sib == nil {
		return
	}
	rep, err := sib.Stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: CROSS-SHARD ISOLATION VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("OK: %d sibling shards served %d mutations during the campaign; all %d live keys verified, integrity clean\n",
		rep.Shards, rep.Ops, rep.Keys)
}

func runRandom(seeds, iterations, workers int) {
	if workers == 0 {
		workers = 1
	}
	if workers < 1 || workers > torture.MaxWorkers {
		fmt.Fprintf(os.Stderr, "corundum-torture: -workers must be in [1,%d], got %d\n", torture.MaxWorkers, workers)
		os.Exit(2)
	}
	start := time.Now()
	totalCrashes := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		var (
			res *torture.Result
			err error
		)
		if workers > 1 {
			res, err = torture.ConcurrentCampaign(seed, iterations, workers)
		} else {
			res, err = torture.Campaign(seed, iterations)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "corundum-torture: seed %d: CONSISTENCY VIOLATION: %v\n", seed, err)
			os.Exit(1)
		}
		totalCrashes += res.Crashes
		fmt.Printf("seed %-3d %5d txs, %4d crashes (%4d rolled back, %3d rolled forward, %3d evicting), map=%d\n",
			seed, res.Iterations, res.Crashes, res.RolledBack, res.RolledFwd, res.Evictions, res.FinalMapLen)
	}
	modeName := "serial"
	if workers > 1 {
		modeName = fmt.Sprintf("%d workers", workers)
	}
	fmt.Printf("OK: %d campaigns (%s), %d injected crashes, all recoveries consistent (%.1fs)\n",
		seeds, modeName, totalCrashes, time.Since(start).Seconds())
}

func runExhaust(workload string, depth, steps, evictSeeds, workers, slabRefill, slabCap int, dumpDir string) {
	cfg := explore.Config{
		Workload:      workload,
		Steps:         steps,
		Depth:         depth,
		EvictionSeeds: evictSeeds,
		Workers:       workers,
		SlabRefill:    slabRefill,
		SlabCap:       slabCap,
	}
	if depth == 0 {
		cfg.Depth = -1 // Config treats 0 as "default"; the CLI's 0 means none
	}
	st := &explore.Stats{}
	cfg.Stats = st

	// Live progress on stderr: the sweep is deterministic but can take a
	// while at higher depths, so show the counters advancing.
	stop := make(chan struct{})
	progressDone := make(chan struct{})
	go func() {
		defer close(progressDone)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "  ... %d/%d crash points (%d recovered+verified, %d pruned, %d recovery crashes, %d evictions)\n",
					st.CrashPoints.Load(), st.TotalOps.Load(), st.Explored.Load(),
					st.Pruned.Load(), st.RecoveryCrashes.Load(), st.Evictions.Load())
			}
		}
	}()

	start := time.Now()
	res, err := explore.Run(cfg)
	close(stop)
	<-progressDone
	if err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: exhaust: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("workload %s: %d ops, %d fences, %d steps\n", workload, res.TotalOps, len(res.FenceOps), res.Steps)
	for i, n := range res.IntervalPoints {
		fmt.Printf("  fence interval %-2d %4d crash points\n", i, n)
	}
	fmt.Printf("explored %d states (%d pruned by durable-image hash), %d recovery crashes, %d eviction variants (%.1fs)\n",
		st.Explored.Load(), st.Pruned.Load(), st.RecoveryCrashes.Load(), st.Evictions.Load(), time.Since(start).Seconds())

	// Exhaustiveness check: every fence interval of the workload must have
	// contributed at least one crash point.
	for i, n := range res.IntervalPoints {
		if n == 0 {
			fmt.Fprintf(os.Stderr, "corundum-torture: exhaust: fence interval %d got zero crash points — enumeration is not exhaustive\n", i)
			os.Exit(2)
		}
	}
	if st.CrashPoints.Load() != res.TotalOps {
		fmt.Fprintf(os.Stderr, "corundum-torture: exhaust: processed %d of %d crash points\n", st.CrashPoints.Load(), res.TotalOps)
		os.Exit(2)
	}

	if len(res.Violations) > 0 {
		for i, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "corundum-torture: VIOLATION: %v\n", v)
			if dumpDir != "" {
				writeFlightDump(dumpDir, i, v)
			}
		}
		fmt.Fprintf(os.Stderr, "corundum-torture: exhaust: %d violations\n", len(res.Violations))
		os.Exit(1)
	}
	fmt.Printf("OK: all %d crash points recover consistently\n", res.TotalOps)
}

func runFaults(workload string, steps, stride, tornBudget, flips, workers int, dumpDir string) {
	st := &explore.FaultsStats{}
	cfg := explore.FaultsConfig{
		Workload:      workload,
		Steps:         steps,
		PointStride:   stride,
		TornBudget:    tornBudget,
		FlipsPerPoint: flips,
		Workers:       workers,
		Stats:         st,
	}

	stop := make(chan struct{})
	progressDone := make(chan struct{})
	go func() {
		defer close(progressDone)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "  ... %d crash points (%d torn schedules, %d flips; %d masked, %d repaired, %d detected)\n",
					st.CrashPoints.Load(), st.TornSchedules.Load(), st.BitFlips.Load(),
					st.Masked.Load(), st.Repaired.Load(), st.Detected.Load())
			}
		}
	}()

	start := time.Now()
	res, err := explore.RunFaults(cfg)
	close(stop)
	<-progressDone
	if err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: faults: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("workload %s: %d ops, %d crash points visited (stride %d)\n", workload, res.TotalOps, res.Points, stride)
	fmt.Printf("torn: %d schedules (%d pruned), %d lines actually tore, %d words persisted out of order\n",
		st.TornSchedules.Load(), st.TornPruned.Load(), res.Media.TornLines, res.Media.TornWords)
	fmt.Printf("rot:  %d bit flips — %d masked+%d repaired+%d detected (%.1fs)\n",
		st.BitFlips.Load(), st.Masked.Load(), st.Repaired.Load(), st.Detected.Load(), time.Since(start).Seconds())

	if len(res.Violations) > 0 {
		for i, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "corundum-torture: VIOLATION: %v\n", v)
			if dumpDir != "" {
				writeFlightDump(dumpDir, i, v)
			}
		}
		fmt.Fprintf(os.Stderr, "corundum-torture: faults: %d violations — silent corruption or torn recovery failure\n", len(res.Violations))
		os.Exit(1)
	}
	fmt.Printf("OK: no silent corruption — every injected fault was masked, repaired, or detected\n")
}

func runMigrate(keys, batch, depth, maxPoints, workers int, dumpDir string) {
	st := &explore.Stats{}
	cfg := explore.MigrateConfig{
		Keys:         keys,
		BatchBuckets: batch,
		Depth:        depth,
		MaxPoints:    maxPoints,
		Workers:      workers,
		Stats:        st,
	}
	if depth == 0 {
		cfg.Depth = -1 // MigrateConfig treats 0 as "default"; the CLI's 0 means none
	}

	stop := make(chan struct{})
	progressDone := make(chan struct{})
	go func() {
		defer close(progressDone)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "  ... %d/%d crash points (%d recovered+verified, %d pruned, %d recovery crashes)\n",
					st.CrashPoints.Load(), st.TotalOps.Load(), st.Explored.Load(),
					st.Pruned.Load(), st.RecoveryCrashes.Load())
			}
		}
	}()

	start := time.Now()
	res, err := explore.RunMigrate(cfg)
	close(stop)
	<-progressDone
	if err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: migrate: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("migration: %d keys, 1->2 split, %d device ops across both pools, %d crash points enumerated\n",
		res.Keys, res.TotalOps, res.ExploredPoints)
	fmt.Printf("explored %d terminal states (%d pruned by durable-image-pair hash), %d nested recovery crashes (%.1fs)\n",
		st.Explored.Load(), st.Pruned.Load(), st.RecoveryCrashes.Load(), time.Since(start).Seconds())

	if len(res.Violations) > 0 {
		for i, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "corundum-torture: VIOLATION: %v\n", v)
			if dumpDir != "" {
				writeFlightDump(dumpDir, i, v)
			}
		}
		fmt.Fprintf(os.Stderr, "corundum-torture: migrate: %d violations — keys lost, duplicated, or torn across the split\n", len(res.Violations))
		os.Exit(1)
	}
	// Exhaustiveness check (only meaningful on a clean run: violations
	// stop the sweep early by design).
	if st.CrashPoints.Load() != res.ExploredPoints {
		fmt.Fprintf(os.Stderr, "corundum-torture: migrate: processed %d of %d crash points\n",
			st.CrashPoints.Load(), res.ExploredPoints)
		os.Exit(2)
	}
	fmt.Printf("OK: every power cut resumes to a completed migration with all %d keys intact\n", res.Keys)
}

func runRepl(rounds, writes int, seed int64) {
	st := &explore.ReplStats{}
	start := time.Now()
	res, err := explore.RunRepl(explore.ReplConfig{
		Rounds:         rounds,
		WritesPerRound: writes,
		Seed:           seed,
		Stats:          st,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: repl: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("repl chaos: %d rounds, %d writes acked; %d link cuts, %d replica crashes, %d bootstrap crashes, %d primary crashes, %d promotions, %d reboots (%.1fs)\n",
		res.Rounds, st.Acked.Load(), st.LinkCuts.Load(), st.ReplicaCrashes.Load(),
		st.BootstrapCrashes.Load(), st.PrimaryCrashes.Load(), st.Promotes.Load(),
		st.Reboots.Load(), time.Since(start).Seconds())
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "corundum-torture: VIOLATION: %v\n", v)
		}
		fmt.Fprintf(os.Stderr, "corundum-torture: repl: %d violations — acked writes lost or replicas diverged\n", len(res.Violations))
		os.Exit(1)
	}
	fmt.Printf("OK: every round converged byte-exact with zero acked-write loss on the surviving epoch\n")
}

func runReaders(rounds, writes, clients int, seed int64, locked bool) {
	st := &explore.ReadersStats{}
	start := time.Now()
	res, err := explore.RunReaders(explore.ReadersConfig{
		Rounds:         rounds,
		WritesPerRound: writes,
		Readers:        clients,
		LockedReads:    locked,
		Seed:           seed,
		Stats:          st,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: readers: %v\n", err)
		os.Exit(2)
	}
	path := "seqlock"
	if locked {
		path = "locked"
	}
	fmt.Printf("reader-vs-crash (%s path): %d rounds, %d writes acked; %d GETs + %d SCAN pairs verified, %d power cuts, %d reboots, %d lock-free reads, %d retries, %d fallbacks (%.1fs)\n",
		path, res.Rounds, st.Acked.Load(), st.Reads.Load(), st.ScanPairs.Load(),
		st.Crashes.Load(), st.Reboots.Load(), st.LockFreeReads.Load(),
		st.ReadRetries.Load(), st.Fallbacks.Load(), time.Since(start).Seconds())
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "corundum-torture: VIOLATION: %v\n", v)
		}
		fmt.Fprintf(os.Stderr, "corundum-torture: readers: %d violations — a reader observed torn, phantom, or uncommitted state, or an acked write was lost\n", len(res.Violations))
		os.Exit(1)
	}
	fmt.Printf("OK: no reader ever observed torn, phantom, or uncommitted state; every acked write survived\n")
}

// writeFlightDump names the file after the crash point and trail so a
// human can replay the exact schedule from the name alone.
func writeFlightDump(dir string, i int, v explore.Violation) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: dump dir: %v\n", err)
		return
	}
	name := fmt.Sprintf("violation-%02d-crash%d", i, v.CrashPoint)
	for _, r := range v.Trail {
		name += fmt.Sprintf("-rec%d", r)
	}
	if v.EvictSeed != 0 {
		name += fmt.Sprintf("-evict%d", v.EvictSeed)
	}
	path := filepath.Join(dir, name+".flight")
	body := v.String() + "\n\n" + strings.TrimRight(v.Flight, "\n") + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "corundum-torture: write %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "corundum-torture: flight dump written to %s\n", path)
}
