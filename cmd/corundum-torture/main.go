// Command corundum-torture runs randomized crash-injection campaigns
// against the library: random transactions over persistent structures,
// power cut at random device operations (sometimes with adversarial
// cache eviction), recovery, and verification that every acknowledged
// transaction survived and every interrupted one is all-or-nothing.
//
//	corundum-torture [-seeds N] [-iterations N] [-workers N]
//
// With -workers 1 (the default) each campaign is the serial mode from
// the paper's testing methodology: one transaction in flight at a time.
// With -workers N>1, N goroutines transact concurrently on the same pool
// and the power cut lands while several journals are active — the
// configuration that stresses sharded-journal recovery.
//
// Exit code 1 means a consistency violation was found (a bug).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"corundum/internal/torture"
)

func main() {
	seeds := flag.Int("seeds", 8, "number of independent campaigns")
	iterations := flag.Int("iterations", 500, "transactions per campaign")
	workers := flag.Int("workers", 1, fmt.Sprintf("concurrent transaction goroutines (1..%d; 1 = serial mode)", torture.MaxWorkers))
	flag.Parse()
	if *workers < 1 || *workers > torture.MaxWorkers {
		fmt.Fprintf(os.Stderr, "corundum-torture: -workers must be in [1,%d], got %d\n", torture.MaxWorkers, *workers)
		os.Exit(2)
	}

	start := time.Now()
	totalCrashes := 0
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		var (
			res *torture.Result
			err error
		)
		if *workers > 1 {
			res, err = torture.ConcurrentCampaign(seed, *iterations, *workers)
		} else {
			res, err = torture.Campaign(seed, *iterations)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "corundum-torture: seed %d: CONSISTENCY VIOLATION: %v\n", seed, err)
			os.Exit(1)
		}
		totalCrashes += res.Crashes
		fmt.Printf("seed %-3d %5d txs, %4d crashes (%4d rolled back, %3d rolled forward, %3d evicting), map=%d\n",
			seed, res.Iterations, res.Crashes, res.RolledBack, res.RolledFwd, res.Evictions, res.FinalMapLen)
	}
	mode := "serial"
	if *workers > 1 {
		mode = fmt.Sprintf("%d workers", *workers)
	}
	fmt.Printf("OK: %d campaigns (%s), %d injected crashes, all recoveries consistent (%.1fs)\n",
		*seeds, mode, totalCrashes, time.Since(start).Seconds())
}
