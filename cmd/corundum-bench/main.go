// Command corundum-bench regenerates the paper's evaluation tables and
// figures on the emulated PM device. It mirrors the artifact's run.sh:
//
//	corundum-bench -experiment fig1   # Figure 1  -> perf.csv
//	corundum-bench -experiment fig2   # Figure 2  -> scale.csv
//	corundum-bench -experiment table5 # Table 5   -> micro.csv
//	corundum-bench -experiment table2 # Table 2 matrix (+ pmcheck verify)
//	corundum-bench -experiment table3 # Table 3 lines-of-code comparison
//	corundum-bench -experiment ablation # design-choice ablations (DESIGN.md)
//	corundum-bench -experiment server # corundum-server group-commit throughput -> server.csv
//	corundum-bench -experiment all
//
// Each experiment prints a human-readable table to stdout; -csv DIR also
// writes the artifact's CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"corundum/internal/baselines/engine"
	"corundum/internal/bench"
	"corundum/internal/pmem"
	"corundum/internal/workloads/loc"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig1|fig2|table2|table3|table5|ablation|server|all")
		n          = flag.Int("n", 20000, "operations per Figure 1 workload")
		microOps   = flag.Int("micro-ops", 50000, "operations per Table 5 row (paper: 50k)")
		segments   = flag.Int("segments", 256, "corpus segments for Figure 2")
		segBytes   = flag.Int("seg-bytes", 64<<10, "bytes per corpus segment")
		consumers  = flag.Int("consumers", 15, "max consumers for Figure 2 (paper: 15)")
		srvClients = flag.Int("server-clients", 8, "concurrent clients for the server experiment")
		srvOps     = flag.Int("server-ops", 5000, "SETs per client for the server experiment")
		profile    = flag.String("profile", "OptaneDC", "memory profile for Figure 1: OptaneDC|CXL|DRAM|NoDelay")
		csvDir     = flag.String("csv", "", "also write artifact CSV files to this directory")
		jsonDir    = flag.String("json", "", "also write BENCH_*.json artifacts (with per-scope fence attribution) to this directory")
	)
	flag.Parse()

	if err := run(*experiment, *n, *microOps, *segments, *segBytes, *consumers, *srvClients, *srvOps, *profile, *csvDir, *jsonDir); err != nil {
		fmt.Fprintln(os.Stderr, "corundum-bench:", err)
		os.Exit(1)
	}
}

func profileByName(name string) (pmem.Profile, error) {
	switch name {
	case "OptaneDC":
		return pmem.OptaneDC, nil
	case "DRAM":
		return pmem.DRAM, nil
	case "NoDelay":
		return pmem.NoDelay, nil
	case "CXL":
		return pmem.CXL, nil
	}
	return pmem.Profile{}, fmt.Errorf("unknown profile %q", name)
}

func run(experiment string, n, microOps, segments, segBytes, consumers, srvClients, srvOps int, profName, csvDir, jsonDir string) error {
	prof, err := profileByName(profName)
	if err != nil {
		return err
	}
	all := experiment == "all"

	if all || experiment == "table2" {
		fmt.Println("=== Table 2: static/dynamic/manual check matrix ===")
		bench.PrintTable2(os.Stdout, bench.Table2())
		if counts, err := bench.VerifyTable2("internal/check/testdata"); err == nil {
			fmt.Printf("\npmcheck verification over the listing corpus: %v\n", counts)
		} else {
			fmt.Printf("\n(pmcheck corpus not found from this directory: %v)\n", err)
		}
		fmt.Println()
	}

	if all || experiment == "table3" {
		fmt.Println("=== Table 3: lines of code to add persistence ===")
		bench.PrintTable3(os.Stdout, loc.Table3())
		fmt.Println()
	}

	if all || experiment == "table5" {
		fmt.Println("=== Table 5: basic operation latency (averaged) ===")
		optane, err := bench.Micro(pmem.OptaneDC, microOps)
		if err != nil {
			return err
		}
		dram, err := bench.Micro(pmem.DRAM, microOps)
		if err != nil {
			return err
		}
		bench.PrintMicro(os.Stdout, optane, dram)
		fmt.Println()
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, "micro.csv"))
			if err != nil {
				return err
			}
			if err := bench.WriteMicroCSV(f, "OptaneDC", optane); err != nil {
				return err
			}
			if err := bench.WriteMicroCSV(f, "DRAM", dram); err != nil {
				return err
			}
			f.Close()
		}
		if jsonDir != "" {
			f, err := os.Create(filepath.Join(jsonDir, "BENCH_micro.json"))
			if err != nil {
				return err
			}
			err = bench.WriteMicroJSON(f, map[string][]bench.MicroResult{"OptaneDC": optane, "DRAM": dram})
			f.Close()
			if err != nil {
				return err
			}
		}
	}

	if all || experiment == "fig1" {
		fmt.Printf("=== Figure 1: library comparison (%d ops, %s profile) ===\n", n, prof.Name)
		rows, err := bench.Fig1(n, engine.Config{Size: 512 << 20, Mem: pmem.Options{Profile: prof}})
		if err != nil {
			return err
		}
		bench.PrintFig1(os.Stdout, rows)
		fmt.Println()
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, "perf.csv"))
			if err != nil {
				return err
			}
			if err := bench.WritePerfCSV(f, rows); err != nil {
				return err
			}
			f.Close()
		}
	}

	if all || experiment == "ablation" {
		fmt.Println("=== Ablations: what the design choices are worth ===")
		rows, err := bench.AblationDedup(n/4, engine.Config{Size: 256 << 20, Mem: pmem.Options{Profile: prof}})
		if err != nil {
			return err
		}
		arenaRows, err := bench.AblationArenas(segments/2, segBytes, 4)
		if err != nil {
			return err
		}
		rows = append(rows, arenaRows...)
		for _, r := range rows {
			fmt.Printf("%-40s with: %8.3fs  without: %8.3fs  (%.2fx)", r.Name, r.Baseline, r.Ablated, r.Ablated/r.Baseline)
			if r.BaselineFences > 0 {
				fmt.Printf("  fences: %d vs %d (%.2fx)", r.BaselineFences, r.AblatedFences, float64(r.AblatedFences)/float64(r.BaselineFences))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if all || experiment == "server" {
		fmt.Printf("=== corundum-server: group-commit throughput (%d clients x %d SETs, %s profile) ===\n",
			srvClients, srvOps, prof.Name)
		rows, err := bench.ServerThroughput(srvClients, srvOps, []int{1, 8, 64}, pmem.Options{Profile: prof})
		if err != nil {
			return err
		}
		bench.PrintServer(os.Stdout, rows)
		if len(rows) > 1 {
			first, last := rows[0], rows[len(rows)-1]
			fmt.Printf("group-commit effect: %.3f -> %.3f fences/op (%.1fx fewer), %.0f -> %.0f ops/sec\n",
				first.FencesPerOp, last.FencesPerOp, first.FencesPerOp/last.FencesPerOp,
				first.OpsPerSec, last.OpsPerSec)
		}
		fmt.Println()
		shardClients := srvClients
		if shardClients < 16 {
			shardClients = 16
		}
		// The shard axis always runs on the CXL profile: its parked
		// (drain-overlapped) fences let N committers fence in parallel even
		// on a small host, so the curve measures the sharding protocol
		// rather than the runner's core count.
		fmt.Printf("=== corundum-server: shard scaling (%d clients x %d SETs, max-batch 64, best of 5, CXL profile) ===\n",
			shardClients, srvOps)
		shardRows, err := bench.ServerShardScaling(shardClients, srvOps, 64, 5, []int{1, 2, 4, 8}, pmem.Options{Profile: pmem.CXL})
		if err != nil {
			return err
		}
		bench.PrintServer(os.Stdout, shardRows)
		if len(shardRows) > 1 {
			first, last := shardRows[0], shardRows[len(shardRows)-1]
			fmt.Printf("shard scaling: %d -> %d shards = %.0f -> %.0f ops/sec (%.2fx)\n",
				first.Shards, last.Shards, first.OpsPerSec, last.OpsPerSec,
				last.OpsPerSec/first.OpsPerSec)
		}
		fmt.Println()
		// The read-mix grid: read:write {50:50, 95:5, 100:0} × clients
		// {16, 64, 256}, each cell through the seqlock lock-free read
		// path AND the RLock fallback — the A/B pair pricing the read
		// convoy the seqlock removes.
		fmt.Printf("=== corundum-server: read/write mix x clients x read path (max-batch 64) ===\n")
		mixRows, err := bench.ServerReadWriteMix(srvOps, 64, []int{50, 95, 100}, []int{16, 64, 256}, pmem.Options{Profile: prof})
		if err != nil {
			return err
		}
		bench.PrintServer(os.Stdout, mixRows)
		var lockfree95, locked95 float64
		for _, r := range mixRows {
			if r.ReadPct == 95 && r.Clients == 64 {
				if r.ReadPath == "seqlock" {
					lockfree95 = r.OpsPerSec
				} else {
					locked95 = r.OpsPerSec
				}
			}
		}
		if locked95 > 0 {
			fmt.Printf("read path at 95%% reads / 64 clients: seqlock %.0f vs locked %.0f ops/sec (%.2fx)\n",
				lockfree95, locked95, lockfree95/locked95)
		}
		fmt.Println()
		off, on, err := bench.ServerTraceOverhead(srvClients, srvOps, 64, pmem.Options{Profile: prof})
		if err != nil {
			return err
		}
		overhead := &bench.TraceOverheadRow{
			OffOpsPerSec: off.OpsPerSec,
			OnOpsPerSec:  on.OpsPerSec,
			OverheadPct:  (off.OpsPerSec - on.OpsPerSec) / off.OpsPerSec * 100,
		}
		fmt.Printf("tracing overhead: off %.0f ops/sec, on %.0f ops/sec (%.1f%%)\n\n",
			overhead.OffOpsPerSec, overhead.OnOpsPerSec, overhead.OverheadPct)
		rows = append(rows, shardRows...)
		rows = append(rows, mixRows...)
		// Serving through a live 1->2 split: the migrating row is the
		// tentpole claim (nonzero throughput while keys move) and CI gates
		// on it in the JSON artifact.
		fmt.Printf("=== corundum-server: serving through an online 1->2 reshard (%d clients) ===\n", srvClients)
		migRows, err := bench.ServerMigration(srvClients, 20000, 1, 2, pmem.Options{Profile: prof})
		if err != nil {
			return err
		}
		bench.PrintMigration(os.Stdout, migRows)
		fmt.Println()
		// Primary/replica pair: bootstrap, shipping cost, replica read
		// offload, lag depth, failover outage. CI gates on the replica
		// serving reads and on failover_seconds being present.
		fmt.Printf("=== corundum-server: streaming replication (%d clients) ===\n", srvClients)
		replRes, err := bench.ServerReplication(srvClients, 20000, pmem.Options{Profile: prof})
		if err != nil {
			return err
		}
		bench.PrintReplication(os.Stdout, replRes)
		fmt.Println()
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, "server.csv"))
			if err != nil {
				return err
			}
			if err := bench.WriteServerCSV(f, rows); err != nil {
				return err
			}
			if err := bench.AppendMigrationCSV(f, migRows); err != nil {
				return err
			}
			f.Close()
		}
		if jsonDir != "" {
			// A bounded media-fault sweep rides along so the artifact tracks
			// fault-campaign coverage (and zero violations) per build.
			cov, err := bench.FaultCampaign(6, 7, 8, 3)
			if err != nil {
				return err
			}
			fmt.Printf("fault campaign: %d crash points, %d torn schedules, %d flips — %d masked, %d repaired, %d detected, %d violations\n",
				cov.CrashPoints, cov.TornSchedules, cov.BitFlips, cov.Masked, cov.Repaired, cov.Detected, cov.Violations)
			// The reader-vs-crash campaign rides along too: readers on the
			// seqlock path through injected power cuts, with its violation
			// counter gated at zero in CI.
			readersCov, err := bench.ReaderCampaign(3, 300)
			if err != nil {
				return err
			}
			fmt.Printf("reader campaign: %d rounds, %d reads + %d scan pairs verified through %d power cuts — %d violations\n",
				readersCov.Rounds, readersCov.Reads, readersCov.ScanPairs, readersCov.Crashes, readersCov.Violations)
			f, err := os.Create(filepath.Join(jsonDir, "BENCH_server.json"))
			if err != nil {
				return err
			}
			err = bench.WriteServerJSON(f, rows, cov, overhead, migRows, replRes, readersCov)
			f.Close()
			if err != nil {
				return err
			}
		}
	}

	if all || experiment == "fig2" {
		fmt.Printf("=== Figure 2: wordcount scalability (%d segments x %d B, %d cores) ===\n",
			segments, segBytes, runtime.NumCPU())
		rows, err := bench.Fig2(segments, segBytes, consumers)
		if err != nil {
			return err
		}
		bench.PrintFig2(os.Stdout, rows)
		fmt.Println()
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, "scale.csv"))
			if err != nil {
				return err
			}
			if err := bench.WriteScaleCSV(f, rows); err != nil {
				return err
			}
			f.Close()
		}
	}
	return nil
}
