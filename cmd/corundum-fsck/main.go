// Command corundum-fsck inspects a Corundum pool file without modifying
// it: header fields, per-arena space accounting and structural
// consistency, journal states (including transactions that a crash left
// pending, which the next Open will roll back or forward), and the root
// pointer. Exit code 1 means structural corruption was found; pending
// journals alone are healthy (that is what recovery is for).
//
// Usage:
//
//	corundum-fsck <pool-file> [...]
package main

import (
	"fmt"
	"os"

	"corundum/internal/pool"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: corundum-fsck <pool-file> [...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		r, err := pool.Inspect(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corundum-fsck: %s: %v\n", path, err)
			bad = true
			continue
		}
		printReport(path, r)
		if len(r.Errors) > 0 {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

func printReport(path string, r *pool.Report) {
	fmt.Printf("%s:\n", path)
	fmt.Printf("  size        %d bytes\n", r.Size)
	fmt.Printf("  generation  %d\n", r.Generation)
	if r.RootOff == 0 {
		fmt.Printf("  root        (unset)\n")
	} else {
		fmt.Printf("  root        offset %#x, type hash %#x\n", r.RootOff, r.RootType)
	}
	fmt.Printf("  journals    %d x %d bytes\n", r.Journals, r.JournalCap)

	var inUse, free uint64
	arenaErrs := 0
	for _, a := range r.Arenas {
		inUse += a.InUse
		free += a.FreeBytes
		if a.Err != "" {
			arenaErrs++
		}
	}
	fmt.Printf("  heap        %d arenas x %d bytes: %d in use, %d free\n",
		len(r.Arenas), r.ArenaHeap, inUse, free)
	for _, a := range r.Arenas {
		if a.Err != "" || a.RedoLog != "clean" {
			fmt.Printf("    arena %-3d %s%s\n", a.Index, a.RedoLog, errSuffix(a.Err))
		}
	}
	pending := 0
	for _, j := range r.JournalInfo {
		if j.State != "idle" {
			pending++
			fmt.Printf("    journal %-3d epoch %-6d %s\n", j.Index, j.Epoch, j.State)
		}
	}
	switch {
	case len(r.Errors) > 0:
		fmt.Printf("  status      CORRUPT: %d problem(s)\n", len(r.Errors))
		for _, e := range r.Errors {
			fmt.Printf("    ! %s\n", e)
		}
	case pending > 0:
		fmt.Printf("  status      clean (crashed: %d transaction(s) pending recovery at next open)\n", pending)
	default:
		fmt.Printf("  status      clean\n")
	}
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return " — " + e
}
