// Command corundum-server serves a persistent key-value store over a
// RESP-like line protocol, backed by one or more Corundum pools.
//
//	corundum-server -pool kv.pool [-addr :6380] [-shards 1] [-size 256MiB-bytes]
//	                [-journals 16] [-max-batch 64] [-max-delay 200us]
//	                [-busy-timeout 100ms] [-metrics-addr :9100]
//
// On startup every shard pool is opened (created and formatted if its
// file does not exist), crash recovery runs on all shards concurrently,
// and each heap is consistency-checked; only then does the server start
// accepting connections. SET and DEL requests from all connections are
// group-committed per shard: the server packs up to -max-batch mutations
// into one failure-atomic transaction per shard, waiting at most
// -max-delay for stragglers, and acknowledges each request only after
// its transaction is durably committed. INFO and STATS expose pool
// geometry, recovery counts, journal occupancy, the batch-size
// histogram, and the emulated device's write/flush/fence counters
// (including per-scope fence attribution), with per-shard breakdowns
// when sharded. With -metrics-addr the same numbers are served as
// Prometheus text on GET /metrics, alongside net/http/pprof.
//
// Every op is traced by default (-trace-sample 1): its latency is
// decomposed into queue/journal/fence/apply/ack phases, the SLOWLOG
// admin command lists the slowest recent ops with their breakdown, and
// GET /debug/trace on the metrics address exports recent traces as
// Chrome trace-event JSON (load in chrome://tracing or Perfetto).
// -trace-sample N traces every Nth op; -trace-sample -1 disables
// tracing. Recovery emits a phased timeline (fsck, heap-open,
// journal-replay, claim-resolution, publish) per shard in the startup
// log, INFO, and pool_recovery_seconds metrics.
//
// With -shards N (N > 1) the keyspace is hash-partitioned across N
// independent pools stored as "<pool>.<i>". Shards share nothing: each
// has its own journals, allocator arenas, and group-commit batcher, so
// throughput scales with shards and a shard that fails to open or
// recover is fenced — its keyspace slice answers -READONLY — while
// every other shard serves normally.
//
// The shard count is a durable property of the deployment, not of the
// command line: the first boot commits -shards into the cluster config
// on shard 0, and every later boot discovers the committed layout from
// the pool files themselves (ignoring a disagreeing -shards). The
// RESHARD N admin command changes it online — keys migrate between
// pools in small crash-atomic batches while traffic keeps being served;
// writes to a key mid-move answer -MOVED <shard> (retryable:
// server.RetryTransient). New shard pools are created as "<pool>.<i>".
// A crash or SIGTERM mid-migration parks it at a durable cursor; the
// next boot resumes it automatically. BACKUP <file> streams a
// CRC-framed, crash-consistent snapshot of the whole keyspace to a file
// while mutations continue; RESTORE <file> validates the file end to
// end, then atomically replaces the keyspace with the snapshot (a crash
// mid-restore wipes to empty at next boot rather than serving a blend).
//
// -repl-listen serves the replication stream: every committed batch is
// shipped, in commit order, to any replicas that connect, with
// heartbeats, lag accounting, and snapshot bootstrap for empty or
// too-far-behind replicas. -replica-of <host:port> starts this server as
// a read-only replica of a primary's -repl-listen address: GET/SCAN
// serve locally, mutations answer -READONLY <primary-addr>, and the
// replica resumes from its durable cursor across crashes of either
// side. The REPLICAOF, PROMOTE, and REPLINFO admin commands drive
// failover at runtime: PROMOTE fences the old epoch durably and starts
// accepting writes (and serving the stream if -repl-listen was given);
// the deposed primary is refused by epoch check when it rejoins and
// re-syncs as a replica.
//
// When every journal slot stays busy for longer than -busy-timeout the
// affected request is answered with -BUSY, a retryable backpressure
// signal (clients: server.Retry backs off with jitter). On SIGTERM or
// SIGINT the server stops accepting, drains the group-commit batchers
// and then the replication stream — connected replicas are at zero lag
// before exit — and closes the pools cleanly.
//
// Startup uses pool.OpenRepair per shard: a cleanly recoverable image
// opens as usual; an image with at-rest media damage is repaired from
// its header and root-slot mirrors, journal-directory checksums, and
// allocator checksums where possible, and otherwise opens DEGRADED —
// reads keep working, mutations answer -READONLY, and the damaged
// ranges are quarantined. The SCRUB admin command runs an online media
// scrub across all shards (metadata mirrors, allocator checksums, a
// verified walk of every store) and reports what it found and repaired.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"corundum/internal/pmem"
	"corundum/internal/pool"
	"corundum/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":6380", "listen address")
		path     = flag.String("pool", "corundum.pool", "pool file (created if absent); shard i uses <pool>.<i> when -shards > 1")
		shards   = flag.Int("shards", 1, "hash-partition the keyspace across this many independent pools")
		size     = flag.Int("size", 256<<20, "per-shard pool size in bytes when creating")
		journals = flag.Int("journals", 16, "journal slots per shard (transaction concurrency) when creating")
		buckets  = flag.Int("buckets", 4096, "KV bucket directory size when creating")
		maxBatch = flag.Int("max-batch", 64, "max mutations per group-commit transaction")
		maxDelay = flag.Duration("max-delay", 200*time.Microsecond, "max wait for group-commit stragglers")
		busyTO   = flag.Duration("busy-timeout", 100*time.Millisecond, "max wait for a journal slot before replying -BUSY (0 blocks forever)")
		profile  = flag.String("profile", "NoDelay", "emulated PM latency profile: OptaneDC|DRAM|NoDelay")
		metrics  = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text), /debug/trace, and /debug/pprof on this address, e.g. :9100")
		traceSmp = flag.Int("trace-sample", 1, "op-trace sampling: 1 traces every op, N every Nth, -1 disables tracing")
		replLn   = flag.String("repl-listen", "", "serve the replication stream to replicas on this address, e.g. :6381")
		replOf   = flag.String("replica-of", "", "start as a read-only replica of a primary's -repl-listen address")
		lockedRd = flag.Bool("locked-reads", false, "ablation: serve GET/SCAN through the store RLock instead of the seqlock read path")
	)
	flag.Parse()
	if err := run(*addr, *path, *shards, *size, *journals, *buckets, *maxBatch, *maxDelay, *busyTO, *traceSmp, *profile, *metrics, *replLn, *replOf, *lockedRd); err != nil {
		fmt.Fprintln(os.Stderr, "corundum-server:", err)
		os.Exit(1)
	}
}

func run(addr, path string, shards, size, journals, buckets, maxBatch int, maxDelay, busyTO time.Duration, traceSample int, profName, metricsAddr, replListen, replicaOf string, lockedReads bool) error {
	var prof pmem.Profile
	switch profName {
	case "OptaneDC":
		prof = pmem.OptaneDC
	case "DRAM":
		prof = pmem.DRAM
	case "NoDelay":
		prof = pmem.NoDelay
	default:
		return fmt.Errorf("unknown profile %q", profName)
	}
	if shards < 1 {
		return fmt.Errorf("-shards %d: need at least one", shards)
	}
	cfg := pool.Config{Size: size, Journals: journals, Mem: pmem.Options{Profile: prof}}

	// Boot discovery: the shard count a deployment is committed to lives
	// in the pools (the cluster config an online RESHARD rewrites), not in
	// -shards. Read it from shard 0 — along with any interrupted
	// migration's manifest, which raises the count to cover the target
	// pools the resume needs — and open exactly that layout. -shards only
	// decides the layout of a fresh deployment.
	lay, err := server.DiscoverLayout(path, shards, cfg.Mem)
	if err != nil {
		return fmt.Errorf("discovering shard layout: %w", err)
	}
	switch {
	case lay.FromFlag:
		// Fresh deployment (or a pool predating cluster configs): -shards
		// decides, and adoptPersistentState commits it.
	case lay.CfgShards != shards:
		fmt.Printf("pools are committed to %d shard(s) (config epoch %d); ignoring -shards %d\n",
			lay.CfgShards, lay.Epoch, shards)
	}
	if m := lay.Resume; m != nil {
		fmt.Printf("interrupted %d->%d migration found (epoch %d, cursor at bucket %d); resuming after recovery\n",
			m.OldN, m.NewN, m.Epoch, m.Cursor)
	}
	for _, stale := range lay.Stale {
		fmt.Printf("WARNING: %s exists but is not part of the committed %d-shard layout (merge leftover?); not opening it\n",
			stale, lay.N)
	}
	shards = lay.N

	// Open (recovering and repairing) or create every shard, all
	// concurrently; no traffic is accepted before recovery completes and
	// the consistency checks in server.NewSharded pass. OpenRepair behaves
	// exactly like Open on a clean image; on a media-damaged one it
	// repairs what mirrors and checksums allow and falls back to degraded
	// read-only serving instead of refusing. A shard that fails to open
	// outright is fenced (-READONLY for its slice) rather than vetoing
	// its siblings — unless it is the only shard.
	paths := lay.Paths
	pools, errs := server.OpenShards(paths, cfg)
	for i, p := range pools {
		switch {
		case p == nil:
			fmt.Printf("WARNING: shard %d (%s) DOWN: %v\n", i, paths[i], errs[i])
			if shards == 1 {
				return errs[i]
			}
		case p.Generation() > 1 || p.RootOff() != 0:
			rb, rf := p.Recovery()
			fmt.Printf("opened pool %s: generation %d, recovery rolled back %d / forward %d txs\n",
				paths[i], p.Generation(), rb, rf)
			if tl := p.RecoveryTimeline(); len(tl) > 0 {
				line := fmt.Sprintf("shard %d recovery timeline: total %.3fms", i, p.RecoverySeconds()*1e3)
				for _, ph := range tl {
					line += fmt.Sprintf(", %s %.3fms", ph.Name, ph.Seconds*1e3)
				}
				fmt.Println(line)
			}
			if p.Degraded() {
				fmt.Printf("WARNING: pool %s is DEGRADED (read-only): %s\n", paths[i], p.DegradedReason())
				for _, r := range p.Quarantine() {
					fmt.Printf("WARNING: quarantined range: off=%d len=%d\n", r.Off, r.Len)
				}
				fmt.Println("WARNING: serving reads; mutations on this shard will be answered -READONLY")
			}
		default:
			fmt.Printf("created pool %s: %d bytes, %d journals\n", paths[i], size, journals)
		}
	}
	defer func() {
		for _, p := range pools {
			if p != nil {
				p.Close()
			}
		}
	}()

	if busyTO == 0 {
		busyTO = -1 // 0 on the command line means "block forever", Options' disable value
	}
	srv, err := server.NewSharded(pools, server.Options{
		MaxBatch: maxBatch, MaxDelay: maxDelay, Buckets: buckets,
		BusyTimeout: busyTO, TraceSample: traceSample, LockedReads: lockedReads,
		// RESHARD grows past the booted pools by creating "<pool>.<i>"
		// files with the same geometry.
		ShardOpener: server.FileShardOpener(path, cfg),
	})
	if err != nil {
		return err
	}
	// Enter the replica role before the source: a node given both flags
	// parks its replication listener until PROMOTE makes it the primary.
	if replicaOf != "" {
		if err := srv.ReplicaOf(replicaOf); err != nil {
			srv.Close()
			return fmt.Errorf("starting as replica of %s: %w", replicaOf, err)
		}
		fmt.Printf("replicating from %s (mutations answer -READONLY; PROMOTE to fail over)\n", replicaOf)
	}
	if replListen != "" {
		rln, err := net.Listen("tcp", replListen)
		if err != nil {
			srv.Close()
			return err
		}
		if err := srv.EnableReplicationSource(rln); err != nil {
			srv.Close()
			return err
		}
		if replicaOf == "" {
			fmt.Printf("replication stream on %s\n", rln.Addr())
		} else {
			fmt.Printf("replication stream on %s (parked until PROMOTE)\n", rln.Addr())
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on %s (%d shard(s), max-batch %d, max-delay %s)\n", ln.Addr(), shards, maxBatch, maxDelay)

	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
		go http.Serve(mln, srv.DebugMux())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case <-sig:
		fmt.Println("shutting down: draining in-flight batches")
	case err := <-serveErr:
		if err != nil {
			srv.Close()
			return err
		}
	}
	// Close stops accepting, waits for connection handlers, and drains the
	// group-commit batchers: every acknowledged write is durable before the
	// deferred pool closes flush and release the shards.
	if err := srv.Close(); err != nil {
		return err
	}
	if srv.Halted() {
		return fmt.Errorf("server halted on pool failure")
	}
	fmt.Println("drained; pools closing cleanly")
	return nil
}
