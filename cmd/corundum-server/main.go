// Command corundum-server serves a persistent key-value store over a
// RESP-like line protocol, backed by a Corundum pool.
//
//	corundum-server -pool kv.pool [-addr :6380] [-size 256MiB-bytes]
//	                [-journals 16] [-max-batch 64] [-max-delay 200us]
//	                [-busy-timeout 100ms] [-metrics-addr :9100]
//
// On startup the pool is opened (creating and formatting it if the file
// does not exist), crash recovery runs, and the heap is consistency-
// checked; only then does the server start accepting connections. SET and
// DEL requests from all connections are group-committed: the server packs
// up to -max-batch mutations into one failure-atomic transaction, waiting
// at most -max-delay for stragglers, and acknowledges each request only
// after its transaction is durably committed. INFO and STATS expose pool
// geometry, recovery counts, journal occupancy, the batch-size histogram,
// and the emulated device's write/flush/fence counters (including
// per-scope fence attribution). With -metrics-addr the same numbers are
// served as Prometheus text on GET /metrics, alongside net/http/pprof.
//
// When every journal slot stays busy for longer than -busy-timeout the
// affected request is answered with -BUSY, a retryable backpressure
// signal (clients: server.RetryBusy backs off with jitter). On SIGTERM or
// SIGINT the server stops accepting, drains the group-commit batcher so
// every acknowledged write is durable, and closes the pool cleanly.
//
// Startup uses pool.OpenRepair: a cleanly recoverable image opens as
// usual; an image with at-rest media damage is repaired from its header
// and root-slot mirrors and allocator checksums where possible, and
// otherwise opens DEGRADED — reads keep working, mutations answer
// -READONLY, and the damaged ranges are quarantined. The SCRUB admin
// command runs an online media scrub (metadata mirrors, allocator
// checksums, a verified walk of the whole store) and reports what it
// found and repaired.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"corundum/internal/pmem"
	"corundum/internal/pool"
	"corundum/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":6380", "listen address")
		path     = flag.String("pool", "corundum.pool", "pool file (created if absent)")
		size     = flag.Int("size", 256<<20, "pool size in bytes when creating")
		journals = flag.Int("journals", 16, "journal slots (transaction concurrency) when creating")
		buckets  = flag.Int("buckets", 4096, "KV bucket directory size when creating")
		maxBatch = flag.Int("max-batch", 64, "max mutations per group-commit transaction")
		maxDelay = flag.Duration("max-delay", 200*time.Microsecond, "max wait for group-commit stragglers")
		busyTO   = flag.Duration("busy-timeout", 100*time.Millisecond, "max wait for a journal slot before replying -BUSY (0 blocks forever)")
		profile  = flag.String("profile", "NoDelay", "emulated PM latency profile: OptaneDC|DRAM|NoDelay")
		metrics  = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text) and /debug/pprof on this address, e.g. :9100")
	)
	flag.Parse()
	if err := run(*addr, *path, *size, *journals, *buckets, *maxBatch, *maxDelay, *busyTO, *profile, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "corundum-server:", err)
		os.Exit(1)
	}
}

func run(addr, path string, size, journals, buckets, maxBatch int, maxDelay, busyTO time.Duration, profName, metricsAddr string) error {
	var prof pmem.Profile
	switch profName {
	case "OptaneDC":
		prof = pmem.OptaneDC
	case "DRAM":
		prof = pmem.DRAM
	case "NoDelay":
		prof = pmem.NoDelay
	default:
		return fmt.Errorf("unknown profile %q", profName)
	}
	mem := pmem.Options{Profile: prof}

	// Open (recovering) or create the pool; no traffic is accepted before
	// this completes and the consistency check in server.New passes.
	var (
		p   *pool.Pool
		err error
	)
	if _, statErr := os.Stat(path); statErr == nil {
		// OpenRepair behaves exactly like Open on a clean image; on a
		// media-damaged one it repairs what mirrors and checksums allow and
		// falls back to degraded read-only serving instead of refusing.
		p, err = pool.OpenRepair(path, mem)
		if err != nil {
			return err
		}
		rb, rf := p.Recovery()
		fmt.Printf("opened pool %s: generation %d, recovery rolled back %d / forward %d txs\n",
			path, p.Generation(), rb, rf)
		if p.Degraded() {
			fmt.Printf("WARNING: pool is DEGRADED (read-only): %s\n", p.DegradedReason())
			for _, r := range p.Quarantine() {
				fmt.Printf("WARNING: quarantined range: off=%d len=%d\n", r.Off, r.Len)
			}
			fmt.Println("WARNING: serving reads; mutations will be answered -READONLY")
		}
	} else {
		p, err = pool.Create(path, pool.Config{Size: size, Journals: journals, Mem: mem})
		if err != nil {
			return err
		}
		fmt.Printf("created pool %s: %d bytes, %d journals\n", path, size, journals)
	}
	defer p.Close()

	if busyTO == 0 {
		busyTO = -1 // 0 on the command line means "block forever", Options' disable value
	}
	srv, err := server.New(p, server.Options{MaxBatch: maxBatch, MaxDelay: maxDelay, Buckets: buckets, BusyTimeout: busyTO})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on %s (max-batch %d, max-delay %s)\n", ln.Addr(), maxBatch, maxDelay)

	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return err
		}
		defer mln.Close()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
		go http.Serve(mln, srv.DebugMux())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case <-sig:
		fmt.Println("shutting down: draining in-flight batches")
	case err := <-serveErr:
		if err != nil {
			srv.Close()
			return err
		}
	}
	// Close stops accepting, waits for connection handlers, and drains the
	// group-commit batcher: every acknowledged write is durable before the
	// deferred p.Close flushes and releases the pool.
	if err := srv.Close(); err != nil {
		return err
	}
	if srv.Halted() {
		return fmt.Errorf("server halted on pool failure")
	}
	fmt.Println("drained; pool closing cleanly")
	return nil
}
