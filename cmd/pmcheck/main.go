// Command pmcheck statically checks Go source for persistent-memory
// safety violations against the Corundum programming rules: !PSafe types
// in pools, transactions mutating captured volatile state, journals
// escaping their transaction, goroutines spawned inside transactions, and
// unsafe/reflect usage alongside the PM API.
//
// Usage:
//
//	pmcheck [path ...]
//
// Each path may be a file or a directory (walked recursively). Exit code
// 1 means violations were found, making pmcheck suitable as a CI gate —
// the Go rendition of the paper's compile-time enforcement.
package main

import (
	"fmt"
	"os"

	"corundum/internal/check"
)

func main() {
	paths := os.Args[1:]
	if len(paths) == 0 {
		paths = []string{"."}
	}
	bad := false
	for _, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmcheck:", err)
			os.Exit(2)
		}
		var diags []check.Diagnostic
		if info.IsDir() {
			diags, err = check.Dir(path)
		} else {
			var src []byte
			if src, err = os.ReadFile(path); err == nil {
				diags, err = check.Source(path, src)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmcheck:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
